// Package client provides the client-side NASD drive API: typed stubs
// over the RPC layer that attach capabilities, nonces, and request
// digests to every call (the client half of Figure 5).
//
// Every call takes a context.Context: cancellation fails the pending
// call immediately, and deadlines are mapped onto transport timeouts by
// the RPC layer. Large transfers can be split into windows of in-flight
// fragments with ReadPipelined/WritePipelined, which is how striped
// clients keep every drive busy (Section 5.2).
//
// A client never holds drive secrets: it proves possession of a
// capability's private portion by keying each request digest with it.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"nasd/internal/bufpool"
	"nasd/internal/capability"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/object"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// Errors surfaced by drive calls. They are matched through errors.Is
// against the *RemoteError carrying the drive's status, so the same
// checks work across client, fmrpc, and afsrpc.
var (
	// ErrAuth means the drive rejected the capability or digest; the
	// caller should return to the file manager for a fresh capability.
	ErrAuth = errors.New("client: authorization rejected; revisit file manager")
	// ErrReplay means the drive saw a stale nonce.
	ErrReplay = errors.New("client: request rejected as replay")
	// ErrCapabilityExpired means the drive rejected the capability
	// specifically because it is past its expiry time. Unlike the
	// general ErrAuth (which it also matches), this condition is
	// renewable: the caller can fetch a fresh capability from the file
	// manager or storage manager and reissue the same request.
	ErrCapabilityExpired = errors.New("client: capability expired; renew and retry")
	// ErrOverloaded means the drive shed the request before executing
	// it (admission queue full, tenant over rate, or deadline
	// unmeetable). It is backpressure, not failure: the request
	// demonstrably never ran, the RemoteError's RetryAfter carries the
	// drive's pacing hint, and health accounting (cheops breakers)
	// must not count it against the drive.
	ErrOverloaded = errors.New("client: drive overloaded; retry later")
)

// RemoteError carries a drive- or manager-reported failure. It is the
// one remote error shape for the whole client plane: the RPC status is
// preserved for programmatic checks, Err optionally wraps a mapped
// domain error (fmrpc and afsrpc use this), and errors.Is recognizes
// ErrAuth and ErrReplay from the status.
type RemoteError struct {
	Status rpc.Status
	Msg    string
	Err    error // optional domain error (e.g. filemgr.ErrPerm)
	// RetryAfter is the drive's pacing hint on StatusRetryLater
	// replies: how long it expects to need before it has room for
	// this request again (0 when the reply carried none).
	RetryAfter time.Duration
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("client: remote returned %v: %s", e.Status, e.Msg)
}

// Unwrap exposes the mapped domain error, if any.
func (e *RemoteError) Unwrap() error { return e.Err }

// Is maps RPC statuses onto the package sentinels so callers can write
// errors.Is(err, client.ErrAuth) regardless of which RPC surface
// produced the failure.
func (e *RemoteError) Is(target error) bool {
	switch target {
	case ErrAuth:
		// Expiry is an authorization failure too: code that funnels
		// all auth rejections back to the file manager keeps working.
		return e.Status == rpc.StatusAuthFailure || e.Status == rpc.StatusCapExpired
	case ErrCapabilityExpired:
		return e.Status == rpc.StatusCapExpired
	case ErrReplay:
		return e.Status == rpc.StatusReplay
	case ErrOverloaded:
		return e.Status == rpc.StatusRetryLater
	}
	return false
}

// Default pipelining parameters: fragments big enough to amortize
// per-request cost, a window deep enough to cover the bandwidth-delay
// product of a switched SAN.
const (
	DefaultFragmentSize = 64 << 10
	DefaultWindow       = 8
)

// Option configures a Drive connection.
type Option func(*Drive)

// WithSecurity sets whether requests carry the security header and
// digests; it must match the drive's configuration. Connections are
// secure by default.
func WithSecurity(secure bool) Option {
	return func(d *Drive) { d.secure = secure }
}

// WithFragmentSize sets the transfer fragment size used by
// ReadPipelined and WritePipelined.
func WithFragmentSize(n int) Option {
	return func(d *Drive) {
		if n > 0 {
			d.fragSize = n
		}
	}
}

// WithWindow sets how many fragments may be in flight at once in
// pipelined transfers.
func WithWindow(n int) Option {
	return func(d *Drive) {
		if n > 0 {
			d.window = n
		}
	}
}

// WithMetrics publishes this connection's telemetry ("client.retries"
// plus the RPC client's "rpc.client.*" family) into reg instead of a
// private registry. Share one registry across the connections of a
// striped client to aggregate them.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(d *Drive) {
		if reg != nil {
			d.reg = reg
		}
	}
}

// WithSpans records this connection's client-side spans into log
// instead of the process-wide telemetry.ProcessSpans.
func WithSpans(log *telemetry.SpanLog) Option {
	return func(d *Drive) {
		if log != nil {
			d.spans = log
		}
	}
}

// Drive is a connection to one NASD drive. With WithRetry and
// WithDialer it is a self-healing handle: requests that fail
// transiently are reissued (with fresh nonces) under deadline-scoped
// backoff, over a replacement connection when the old one died.
type Drive struct {
	connMu   sync.Mutex
	cli      *rpc.Client
	gen      uint64 // bumped per reconnect; names a connection incarnation
	dial     func() (rpc.Conn, error)
	driveID  uint64
	clientID uint64
	counter  atomic.Uint64
	secure   bool
	fragSize int
	window   int
	retry    RetryPolicy
	budget   *retryBudget
	rngMu    sync.Mutex
	rng      *rand.Rand // backoff jitter; seeded per handle for determinism
	reg      *telemetry.Registry
	spans    *telemetry.SpanLog
	signers  *crypt.DigestCache[crypt.Key, *crypt.Signer]

	retries       *telemetry.Counter // requests or fragments re-issued after transient failures
	reconnects    *telemetry.Counter // replacement connections dialed
	exhausted     *telemetry.Counter // retries abandoned: budget empty
	backpressured *telemetry.Counter // hinted waits after StatusRetryLater
}

// New wraps an RPC connection to a drive. clientID identifies this
// client in nonces. Connections default to secure with the default
// pipelining parameters; see WithSecurity, WithFragmentSize,
// WithWindow, and WithMetrics.
func New(conn rpc.Conn, driveID, clientID uint64, opts ...Option) *Drive {
	d := &Drive{
		driveID:  driveID,
		clientID: clientID,
		secure:   true,
		fragSize: DefaultFragmentSize,
		window:   DefaultWindow,
		signers:  crypt.NewDigestCache[crypt.Key, *crypt.Signer](64),
	}
	for _, o := range opts {
		o(d)
	}
	if d.reg == nil {
		d.reg = telemetry.NewRegistry()
	}
	if d.spans == nil {
		d.spans = telemetry.ProcessSpans
	}
	d.budget = newRetryBudget(d.retry.Budget)
	d.rng = seedRNG(driveID, clientID)
	d.retries = d.reg.Counter("client.retries")
	d.reconnects = d.reg.Counter("client.reconnects")
	d.exhausted = d.reg.Counter("client.retries_exhausted")
	d.backpressured = d.reg.Counter("client.backpressure_waits")
	d.cli = rpc.NewClient(conn, rpc.WithClientMetrics(d.reg))
	return d
}

// Close releases the connection.
func (d *Drive) Close() error {
	cli, _ := d.client()
	return cli.Close()
}

// DriveID returns the drive identity this client targets.
func (d *Drive) DriveID() uint64 { return d.driveID }

// Metrics returns the connection's telemetry registry.
func (d *Drive) Metrics() *telemetry.Registry { return d.reg }

// Stats is a snapshot of this connection's observability counters.
//
// Deprecated: the fields are now views over the telemetry registry;
// use Metrics().Snapshot() for the full set.
type Stats struct {
	RPC     rpc.ClientStats
	Retries uint64 // pipelined fragments re-issued after transient failures
}

// Stats returns the connection counters.
func (d *Drive) Stats() Stats {
	cli, _ := d.client()
	return Stats{RPC: cli.Stats(), Retries: d.retries.Load()}
}

// ServerMetrics fetches the drive's own telemetry snapshot over the
// stats RPC: per-op service times split into digest/object/media
// components (the paper's Table 1 decomposition, measured), cache and
// media counters, and — when traceN > 0 — the tail of the drive's
// request trace log.
func (d *Drive) ServerMetrics(ctx context.Context, traceN int) (drive.StatsReply, error) {
	return d.ServerStats(ctx, drive.StatsArgs{TraceN: uint32(traceN)})
}

// ServerStats is the general form of the stats RPC: the caller picks
// exactly which optional sections (trace tail, span lookup, event-log
// tail) the drive should attach to its metrics snapshot. nasdctl's
// fleet commands use it to pull metrics and events in one round trip
// per drive.
func (d *Drive) ServerStats(ctx context.Context, args drive.StatsArgs) (drive.StatsReply, error) {
	rep, err := d.call(ctx, drive.OpGetStats, nil, args.Encode(), nil)
	if err != nil {
		return drive.StatsReply{}, err
	}
	var sr drive.StatsReply
	if err := json.Unmarshal(rep.Data, &sr); err != nil {
		return drive.StatsReply{}, fmt.Errorf("client: decoding stats reply: %v", err)
	}
	rep.Release()
	return sr, nil
}

// do issues one logical request under the retry policy. Every call
// opens a client-side span (a child of ctx's active span, or a new
// root); the RPC layer stamps its context into the request header so
// the drive-side span links under it. Each attempt is assembled and
// signed from scratch — drives reject replayed nonce counters, so a
// retried request must carry a fresh nonce and digest.
func (d *Drive) do(ctx context.Context, op drive.Op, sign func(*rpc.Request), args, data []byte) (*rpc.Reply, error) {
	ctx, sp := d.spans.StartSpan(ctx, "client."+op.String())
	defer sp.End()
	var lastErr error
	var lastGen uint64
	for attempt := 0; ; attempt++ {
		rep, gen, err := d.attempt(ctx, op, sign, args, data)
		lastGen = gen
		if err == nil {
			d.budget.refund()
			if attempt > 0 {
				sp.Annotate("retries", fmt.Sprint(attempt))
			}
			return rep, nil
		}
		lastErr = err
		mode := d.retryMode(ctx, op, err)
		if mode == retryNo || attempt+1 >= d.retry.MaxAttempts {
			break
		}
		// Backpressure (StatusRetryLater) is pacing, not failure: the
		// drive told this client when to come back, so honoring the
		// hint does not spend retry-budget tokens — the budget guards
		// against retry amplification toward a *failing* drive, and an
		// overloaded drive sheds precisely so that retries stay cheap.
		// MaxAttempts and the caller's deadline still bound the loop.
		var hint time.Duration
		if re := (*RemoteError)(nil); errors.As(err, &re) && re.Status == rpc.StatusRetryLater {
			hint = re.RetryAfter
			d.backpressured.Inc()
		} else if !d.budget.take() {
			d.exhausted.Inc()
			break
		}
		if mode == retryReconnect {
			if rerr := d.reconnect(gen); rerr != nil {
				// Unreachable right now; keep the dial error, back
				// off, and let the next attempt trigger another dial.
				lastErr = rerr
			}
		}
		d.retries.Inc()
		sp.Annotate("retry", fmt.Sprintf("%d: %v", attempt+1, err))
		if serr := d.backoff(ctx, attempt, hint); serr != nil {
			lastErr = fmt.Errorf("%w; last error: %v", serr, lastErr)
			break
		}
	}
	var re *RemoteError
	if errors.As(lastErr, &re) {
		sp.Annotate("status", re.Status.String())
	} else {
		sp.Annotate("error", lastErr.Error())
		// A transport failure leaves the handle holding a dead
		// connection. Even when this request cannot be reissued (the op
		// is non-idempotent, or attempts ran out), repair the
		// connection now so later requests don't inherit the corpse —
		// without this, a severed connection would poison every
		// subsequent create/remove on the handle forever.
		if d.dial != nil && !errors.Is(lastErr, context.Canceled) &&
			!errors.Is(lastErr, context.DeadlineExceeded) {
			_ = d.reconnect(lastGen)
		}
	}
	return nil, lastErr
}

// attempt issues one wire request on the current connection, returning
// the connection generation it used so a retry can name it to
// reconnect().
func (d *Drive) attempt(ctx context.Context, op drive.Op, sign func(*rpc.Request), args, data []byte) (*rpc.Reply, uint64, error) {
	cli, gen := d.client()
	req := &rpc.Request{
		Proc: uint16(op),
		Args: args,
		Data: data,
		Nonce: crypt.Nonce{
			Client:  d.clientID,
			Counter: d.counter.Add(1),
		},
	}
	if d.secure {
		req.SecOpts = rpc.SecIntegrity
		sign(req)
	}
	if d.retry.AttemptTimeout > 0 {
		actx, cancel := context.WithTimeout(ctx, d.retry.AttemptTimeout)
		defer cancel()
		ctx = actx
	}
	rep, err := cli.Call(ctx, req)
	if err != nil {
		return nil, gen, err
	}
	if rep.Status != rpc.StatusOK {
		rerr := &RemoteError{Status: rep.Status, Msg: rep.Msg}
		if hint, ok := rpc.RetryAfterHint(rep); ok {
			rerr.RetryAfter = hint
		}
		return nil, gen, rerr
	}
	return rep, gen, nil
}

// ServerSpans fetches every span the drive recorded for traceID over
// the stats RPC. nasdctl merges these from several drives (plus the
// local process's own spans) into one timeline.
func (d *Drive) ServerSpans(ctx context.Context, traceID uint64) ([]telemetry.SpanRecord, error) {
	sr, err := d.ServerStats(ctx, drive.StatsArgs{SpanTrace: traceID})
	if err != nil {
		return nil, err
	}
	return sr.Spans, nil
}

// signer returns the reusable HMAC state for key, creating and caching
// it on first use. Steady-state signing then costs one Reset+digest
// instead of a fresh HMAC key schedule per request.
func (d *Drive) signer(key crypt.Key) *crypt.Signer {
	if s, ok := d.signers.Get(key); ok {
		return s
	}
	s := crypt.NewSigner(key)
	d.signers.Put(key, s)
	return s
}

// call issues a capability-authorized request.
func (d *Drive) call(ctx context.Context, op drive.Op, cap *capability.Capability, args, data []byte) (*rpc.Reply, error) {
	return d.do(ctx, op, func(req *rpc.Request) {
		if cap != nil {
			req.Cap = cap.Public.Encode()
			body := req.AppendSigningBody(bufpool.Get(96 + len(req.Cap) + len(req.Args)))
			req.ReqDig = d.signer(cap.Private).MAC(body)
			bufpool.Put(body)
		}
	}, args, data)
}

// callAdmin signs a management request directly under key (master or
// drive key held by an administrator or file manager).
func (d *Drive) callAdmin(ctx context.Context, op drive.Op, key crypt.Key, args, data []byte) (*rpc.Reply, error) {
	return d.do(ctx, op, func(req *rpc.Request) {
		body := req.AppendSigningBody(bufpool.Get(96 + len(req.Args)))
		req.ReqDig = d.signer(key).MAC(body)
		bufpool.Put(body)
	}, args, data)
}

// Read fetches object bytes [off, off+n).
func (d *Drive) Read(ctx context.Context, cap *capability.Capability, part uint16, obj, off uint64, n int) ([]byte, error) {
	args := (&drive.ReadArgs{Partition: part, Object: obj, Offset: off, Length: uint64(n)}).Encode()
	rep, err := d.call(ctx, drive.OpReadObject, cap, args, nil)
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// ReadInto fetches object bytes [off, off+len(dst)) into dst, returning
// the number of bytes read (short at end-of-object, like Read). Unlike
// Read — whose result aliases the reply frame, leaving it to the
// garbage collector — ReadInto copies into the caller's buffer and
// recycles the frame immediately, so a streaming reader holds pool
// turnover to its window size.
func (d *Drive) ReadInto(ctx context.Context, cap *capability.Capability, part uint16, obj, off uint64, dst []byte) (int, error) {
	args := (&drive.ReadArgs{Partition: part, Object: obj, Offset: off, Length: uint64(len(dst))}).Encode()
	rep, err := d.call(ctx, drive.OpReadObject, cap, args, nil)
	if err != nil {
		return 0, err
	}
	n := copy(dst, rep.Data)
	rep.Release()
	return n, nil
}

// Write stores data at off.
func (d *Drive) Write(ctx context.Context, cap *capability.Capability, part uint16, obj, off uint64, data []byte) error {
	args := (&drive.WriteArgs{Partition: part, Object: obj, Offset: off}).Encode()
	rep, err := d.call(ctx, drive.OpWriteObject, cap, args, data)
	if err != nil {
		return err
	}
	rep.Release()
	return nil
}

// GetAttr fetches object attributes.
func (d *Drive) GetAttr(ctx context.Context, cap *capability.Capability, part uint16, obj uint64) (object.Attributes, error) {
	args := (&drive.ObjArgs{Partition: part, Object: obj}).Encode()
	rep, err := d.call(ctx, drive.OpGetAttr, cap, args, nil)
	if err != nil {
		return object.Attributes{}, err
	}
	at, derr := drive.DecodeAttrsReply(rep.Args)
	rep.Release()
	return at, derr
}

// SetAttr updates attributes selected by mask.
func (d *Drive) SetAttr(ctx context.Context, cap *capability.Capability, part uint16, obj uint64, attrs object.Attributes, mask object.SetAttrMask) error {
	args := (&drive.SetAttrArgs{Partition: part, Object: obj, Mask: uint32(mask), Attrs: attrs}).Encode()
	_, err := d.call(ctx, drive.OpSetAttr, cap, args, nil)
	return err
}

// Create makes a new object in part, returning its ID. The capability
// must be partition-scope with CreateObj rights.
func (d *Drive) Create(ctx context.Context, cap *capability.Capability, part uint16) (uint64, error) {
	args := (&drive.ObjArgs{Partition: part}).Encode()
	rep, err := d.call(ctx, drive.OpCreateObject, cap, args, nil)
	if err != nil {
		return 0, err
	}
	id, derr := drive.DecodeIDReply(rep.Args)
	rep.Release()
	return id, derr
}

// Remove deletes an object.
func (d *Drive) Remove(ctx context.Context, cap *capability.Capability, part uint16, obj uint64) error {
	args := (&drive.ObjArgs{Partition: part, Object: obj}).Encode()
	_, err := d.call(ctx, drive.OpRemoveObject, cap, args, nil)
	return err
}

// VersionObject snapshots an object copy-on-write, returning the new ID.
func (d *Drive) VersionObject(ctx context.Context, cap *capability.Capability, part uint16, obj uint64) (uint64, error) {
	args := (&drive.ObjArgs{Partition: part, Object: obj}).Encode()
	rep, err := d.call(ctx, drive.OpVersionObject, cap, args, nil)
	if err != nil {
		return 0, err
	}
	id, derr := drive.DecodeIDReply(rep.Args)
	rep.Release()
	return id, derr
}

// BumpVersion increments an object's logical version (revoking extant
// capabilities) and returns the new version.
func (d *Drive) BumpVersion(ctx context.Context, cap *capability.Capability, part uint16, obj uint64) (uint64, error) {
	args := (&drive.ObjArgs{Partition: part, Object: obj}).Encode()
	rep, err := d.call(ctx, drive.OpBumpVersion, cap, args, nil)
	if err != nil {
		return 0, err
	}
	id, derr := drive.DecodeIDReply(rep.Args)
	rep.Release()
	return id, derr
}

// List returns the IDs of the objects in a partition.
func (d *Drive) List(ctx context.Context, cap *capability.Capability, part uint16) ([]uint64, error) {
	args := (&drive.ObjArgs{Partition: part}).Encode()
	rep, err := d.call(ctx, drive.OpListObjects, cap, args, nil)
	if err != nil {
		return nil, err
	}
	ids, derr := drive.DecodeIDListReply(rep.Args)
	rep.Release()
	return ids, derr
}

// Execute runs a registered Active Disk kernel against an object and
// returns its (small) result.
func (d *Drive) Execute(ctx context.Context, cap *capability.Capability, part uint16, obj uint64, kernel string, params []byte) ([]byte, error) {
	args := (&drive.ExecuteArgs{Partition: part, Object: obj, Kernel: kernel, Params: params}).Encode()
	rep, err := d.call(ctx, drive.OpExecute, cap, args, nil)
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// Flush forces drive write-behind data to stable storage.
func (d *Drive) Flush(ctx context.Context) error {
	_, err := d.call(ctx, drive.OpFlush, nil, nil, nil)
	return err
}

// --- Management operations (signed under drive keys) ---------------------

func keyRef(id crypt.KeyID) drive.KeyRef {
	return drive.KeyRef{Type: uint8(id.Type), Partition: id.Partition, Version: id.Version}
}

// CreatePartition creates a partition on the drive's default storage
// engine; authKey must be the master or drive key named by authID.
func (d *Drive) CreatePartition(ctx context.Context, authID crypt.KeyID, authKey crypt.Key, part uint16, quota int64) error {
	args := (&drive.PartArgs{Partition: part, Quota: quota, AuthKey: keyRef(authID)}).Encode()
	_, err := d.callAdmin(ctx, drive.OpCreatePartition, authKey, args, nil)
	return err
}

// CreatePartitionBackend creates a partition served by the named
// storage engine (classic layout or the needle small-object log). The
// choice is persisted on the drive and fixed for the partition's
// lifetime.
func (d *Drive) CreatePartitionBackend(ctx context.Context, authID crypt.KeyID, authKey crypt.Key, part uint16, quota int64, backend object.BackendKind) error {
	args := (&drive.PartArgs{
		Partition: part, Quota: quota,
		Backend: drive.WireBackend(backend),
		AuthKey: keyRef(authID),
	}).Encode()
	_, err := d.callAdmin(ctx, drive.OpCreatePartition, authKey, args, nil)
	return err
}

// ResizePartition changes a partition quota.
func (d *Drive) ResizePartition(ctx context.Context, authID crypt.KeyID, authKey crypt.Key, part uint16, quota int64) error {
	args := (&drive.PartArgs{Partition: part, Quota: quota, AuthKey: keyRef(authID)}).Encode()
	_, err := d.callAdmin(ctx, drive.OpResizePartition, authKey, args, nil)
	return err
}

// RemovePartition deletes an empty partition.
func (d *Drive) RemovePartition(ctx context.Context, authID crypt.KeyID, authKey crypt.Key, part uint16) error {
	args := (&drive.PartArgs{Partition: part, AuthKey: keyRef(authID)}).Encode()
	_, err := d.callAdmin(ctx, drive.OpRemovePartition, authKey, args, nil)
	return err
}

// GetPartition fetches partition metadata.
func (d *Drive) GetPartition(ctx context.Context, authID crypt.KeyID, authKey crypt.Key, part uint16) (object.Partition, error) {
	args := (&drive.PartArgs{Partition: part, AuthKey: keyRef(authID)}).Encode()
	rep, err := d.callAdmin(ctx, drive.OpGetPartition, authKey, args, nil)
	if err != nil {
		return object.Partition{}, err
	}
	pr, derr := drive.DecodePartReply(rep.Args)
	rep.Release()
	return pr, derr
}

// SetKey installs a key on the drive (the set-security-key request).
func (d *Drive) SetKey(ctx context.Context, authID crypt.KeyID, authKey crypt.Key, target crypt.KeyID, key crypt.Key) error {
	args := (&drive.SetKeyArgs{
		Target:  keyRef(target),
		Key:     key[:],
		AuthKey: keyRef(authID),
	}).Encode()
	_, err := d.callAdmin(ctx, drive.OpSetKey, authKey, args, nil)
	return err
}
