// Package client provides the client-side NASD drive API: typed stubs
// over the RPC layer that attach capabilities, nonces, and request
// digests to every call (the client half of Figure 5).
//
// A client never holds drive secrets: it proves possession of a
// capability's private portion by keying each request digest with it.
package client

import (
	"errors"
	"fmt"
	"sync/atomic"

	"nasd/internal/capability"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/object"
	"nasd/internal/rpc"
)

// Errors surfaced by drive calls.
var (
	// ErrAuth means the drive rejected the capability or digest; the
	// caller should return to the file manager for a fresh capability.
	ErrAuth = errors.New("client: authorization rejected; revisit file manager")
	// ErrReplay means the drive saw a stale nonce.
	ErrReplay = errors.New("client: request rejected as replay")
)

// RemoteError carries a drive-reported failure.
type RemoteError struct {
	Status rpc.Status
	Msg    string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("client: drive returned %v: %s", e.Status, e.Msg)
}

// Drive is a connection to one NASD drive.
type Drive struct {
	cli      *rpc.Client
	driveID  uint64
	clientID uint64
	counter  atomic.Uint64
	secure   bool
}

// New wraps an RPC connection to a drive. clientID identifies this
// client in nonces; secure must match the drive's configuration.
func New(conn rpc.Conn, driveID, clientID uint64, secure bool) *Drive {
	return &Drive{cli: rpc.NewClient(conn), driveID: driveID, clientID: clientID, secure: secure}
}

// Close releases the connection.
func (d *Drive) Close() error { return d.cli.Close() }

// DriveID returns the drive identity this client targets.
func (d *Drive) DriveID() uint64 { return d.driveID }

// call assembles, signs, and issues one request.
func (d *Drive) call(op drive.Op, cap *capability.Capability, args, data []byte) (*rpc.Reply, error) {
	req := &rpc.Request{
		Proc: uint16(op),
		Args: args,
		Data: data,
		Nonce: crypt.Nonce{
			Client:  d.clientID,
			Counter: d.counter.Add(1),
		},
	}
	if d.secure {
		req.SecOpts = rpc.SecIntegrity
		if cap != nil {
			req.Cap = cap.Public.Encode()
			req.ReqDig = cap.SignRequest(req.SigningBody())
		}
	}
	rep, err := d.cli.Call(req)
	if err != nil {
		return nil, err
	}
	switch rep.Status {
	case rpc.StatusOK:
		return rep, nil
	case rpc.StatusAuthFailure:
		return nil, fmt.Errorf("%w: %s", ErrAuth, rep.Msg)
	case rpc.StatusReplay:
		return nil, fmt.Errorf("%w: %s", ErrReplay, rep.Msg)
	default:
		return nil, &RemoteError{Status: rep.Status, Msg: rep.Msg}
	}
}

// callAdmin signs a management request directly under key (master or
// drive key held by an administrator or file manager).
func (d *Drive) callAdmin(op drive.Op, key crypt.Key, args, data []byte) (*rpc.Reply, error) {
	req := &rpc.Request{
		Proc: uint16(op),
		Args: args,
		Data: data,
		Nonce: crypt.Nonce{
			Client:  d.clientID,
			Counter: d.counter.Add(1),
		},
	}
	if d.secure {
		req.SecOpts = rpc.SecIntegrity
		req.ReqDig = crypt.MAC(key, req.SigningBody())
	}
	rep, err := d.cli.Call(req)
	if err != nil {
		return nil, err
	}
	switch rep.Status {
	case rpc.StatusOK:
		return rep, nil
	case rpc.StatusAuthFailure:
		return nil, fmt.Errorf("%w: %s", ErrAuth, rep.Msg)
	case rpc.StatusReplay:
		return nil, fmt.Errorf("%w: %s", ErrReplay, rep.Msg)
	default:
		return nil, &RemoteError{Status: rep.Status, Msg: rep.Msg}
	}
}

// Read fetches object bytes [off, off+n).
func (d *Drive) Read(cap *capability.Capability, part uint16, obj, off uint64, n int) ([]byte, error) {
	args := (&drive.ReadArgs{Partition: part, Object: obj, Offset: off, Length: uint64(n)}).Encode()
	rep, err := d.call(drive.OpReadObject, cap, args, nil)
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// Write stores data at off.
func (d *Drive) Write(cap *capability.Capability, part uint16, obj, off uint64, data []byte) error {
	args := (&drive.WriteArgs{Partition: part, Object: obj, Offset: off}).Encode()
	_, err := d.call(drive.OpWriteObject, cap, args, data)
	return err
}

// GetAttr fetches object attributes.
func (d *Drive) GetAttr(cap *capability.Capability, part uint16, obj uint64) (object.Attributes, error) {
	args := (&drive.ObjArgs{Partition: part, Object: obj}).Encode()
	rep, err := d.call(drive.OpGetAttr, cap, args, nil)
	if err != nil {
		return object.Attributes{}, err
	}
	return drive.DecodeAttrsReply(rep.Args)
}

// SetAttr updates attributes selected by mask.
func (d *Drive) SetAttr(cap *capability.Capability, part uint16, obj uint64, attrs object.Attributes, mask object.SetAttrMask) error {
	args := (&drive.SetAttrArgs{Partition: part, Object: obj, Mask: uint32(mask), Attrs: attrs}).Encode()
	_, err := d.call(drive.OpSetAttr, cap, args, nil)
	return err
}

// Create makes a new object in part, returning its ID. The capability
// must be partition-scope with CreateObj rights.
func (d *Drive) Create(cap *capability.Capability, part uint16) (uint64, error) {
	args := (&drive.ObjArgs{Partition: part}).Encode()
	rep, err := d.call(drive.OpCreateObject, cap, args, nil)
	if err != nil {
		return 0, err
	}
	return drive.DecodeIDReply(rep.Args)
}

// Remove deletes an object.
func (d *Drive) Remove(cap *capability.Capability, part uint16, obj uint64) error {
	args := (&drive.ObjArgs{Partition: part, Object: obj}).Encode()
	_, err := d.call(drive.OpRemoveObject, cap, args, nil)
	return err
}

// VersionObject snapshots an object copy-on-write, returning the new ID.
func (d *Drive) VersionObject(cap *capability.Capability, part uint16, obj uint64) (uint64, error) {
	args := (&drive.ObjArgs{Partition: part, Object: obj}).Encode()
	rep, err := d.call(drive.OpVersionObject, cap, args, nil)
	if err != nil {
		return 0, err
	}
	return drive.DecodeIDReply(rep.Args)
}

// BumpVersion increments an object's logical version (revoking extant
// capabilities) and returns the new version.
func (d *Drive) BumpVersion(cap *capability.Capability, part uint16, obj uint64) (uint64, error) {
	args := (&drive.ObjArgs{Partition: part, Object: obj}).Encode()
	rep, err := d.call(drive.OpBumpVersion, cap, args, nil)
	if err != nil {
		return 0, err
	}
	return drive.DecodeIDReply(rep.Args)
}

// List returns the IDs of the objects in a partition.
func (d *Drive) List(cap *capability.Capability, part uint16) ([]uint64, error) {
	args := (&drive.ObjArgs{Partition: part}).Encode()
	rep, err := d.call(drive.OpListObjects, cap, args, nil)
	if err != nil {
		return nil, err
	}
	return drive.DecodeIDListReply(rep.Args)
}

// Execute runs a registered Active Disk kernel against an object and
// returns its (small) result.
func (d *Drive) Execute(cap *capability.Capability, part uint16, obj uint64, kernel string, params []byte) ([]byte, error) {
	args := (&drive.ExecuteArgs{Partition: part, Object: obj, Kernel: kernel, Params: params}).Encode()
	rep, err := d.call(drive.OpExecute, cap, args, nil)
	if err != nil {
		return nil, err
	}
	return rep.Data, nil
}

// Flush forces drive write-behind data to stable storage.
func (d *Drive) Flush() error {
	_, err := d.call(drive.OpFlush, nil, nil, nil)
	return err
}

// --- Management operations (signed under drive keys) ---------------------

func keyRef(id crypt.KeyID) drive.KeyRef {
	return drive.KeyRef{Type: uint8(id.Type), Partition: id.Partition, Version: id.Version}
}

// CreatePartition creates a partition; authKey must be the master or
// drive key named by authID.
func (d *Drive) CreatePartition(authID crypt.KeyID, authKey crypt.Key, part uint16, quota int64) error {
	args := (&drive.PartArgs{Partition: part, Quota: quota, AuthKey: keyRef(authID)}).Encode()
	_, err := d.callAdmin(drive.OpCreatePartition, authKey, args, nil)
	return err
}

// ResizePartition changes a partition quota.
func (d *Drive) ResizePartition(authID crypt.KeyID, authKey crypt.Key, part uint16, quota int64) error {
	args := (&drive.PartArgs{Partition: part, Quota: quota, AuthKey: keyRef(authID)}).Encode()
	_, err := d.callAdmin(drive.OpResizePartition, authKey, args, nil)
	return err
}

// RemovePartition deletes an empty partition.
func (d *Drive) RemovePartition(authID crypt.KeyID, authKey crypt.Key, part uint16) error {
	args := (&drive.PartArgs{Partition: part, AuthKey: keyRef(authID)}).Encode()
	_, err := d.callAdmin(drive.OpRemovePartition, authKey, args, nil)
	return err
}

// GetPartition fetches partition metadata.
func (d *Drive) GetPartition(authID crypt.KeyID, authKey crypt.Key, part uint16) (object.Partition, error) {
	args := (&drive.PartArgs{Partition: part, AuthKey: keyRef(authID)}).Encode()
	rep, err := d.callAdmin(drive.OpGetPartition, authKey, args, nil)
	if err != nil {
		return object.Partition{}, err
	}
	return drive.DecodePartReply(rep.Args)
}

// SetKey installs a key on the drive (the set-security-key request).
func (d *Drive) SetKey(authID crypt.KeyID, authKey crypt.Key, target crypt.KeyID, key crypt.Key) error {
	args := (&drive.SetKeyArgs{
		Target:  keyRef(target),
		Key:     key[:],
		AuthKey: keyRef(authID),
	}).Encode()
	_, err := d.callAdmin(drive.OpSetKey, authKey, args, nil)
	return err
}
