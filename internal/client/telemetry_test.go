package client

import (
	"bytes"
	"testing"

	"nasd/internal/capability"
	"nasd/internal/telemetry"
)

// TestTelemetryEndToEnd drives a secure client/drive pair and checks
// the whole observability story: per-op drive counters with the
// digest/object split, RPC-plane counters sharing the registry, cache
// hit counters, trace-ID propagation from client context to the
// drive's trace log, and the stats RPC that carries it all back.
func TestTelemetryEndToEnd(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)

	cc := r.mint(t, 1, 0, 0, capability.CreateObj)
	obj, err := r.cli.Create(testCtx, &cc, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("telemetry"), 512)
	wc := r.mint(t, 1, obj, 1, capability.Write)
	if err := r.cli.Write(testCtx, &wc, 1, obj, 0, data); err != nil {
		t.Fatal(err)
	}

	ctx, reqID := telemetry.WithRequestID(testCtx)
	rc := r.mint(t, 1, obj, 1, capability.Read)
	before, err := r.cli.ServerMetrics(testCtx, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // second read is a guaranteed cache hit
		got, err := r.cli.Read(ctx, &rc, 1, obj, 0, len(data))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("read returned wrong data")
		}
	}

	sr, err := r.cli.ServerMetrics(testCtx, 64)
	if err != nil {
		t.Fatal(err)
	}
	m := sr.Metrics
	if m.Counters["drive.op.read.calls"] < 2 {
		t.Fatalf("drive.op.read.calls = %d, want >= 2", m.Counters["drive.op.read.calls"])
	}
	if m.Counters["drive.op.read.digest_ns"] == 0 {
		t.Fatal("secure reads must accrue digest time")
	}
	if m.Counters["drive.op.read.bytes_out"] < uint64(2*len(data)) {
		t.Fatalf("drive.op.read.bytes_out = %d", m.Counters["drive.op.read.bytes_out"])
	}
	if h := m.Histograms["drive.op.read.svc_ns"]; h.Count < 2 || h.Sum <= 0 {
		t.Fatalf("drive.op.read.svc_ns: %+v", h)
	}
	// The RPC server shares the registry and names ops via drive.Op.
	if m.Counters["rpc.server.op.read.calls"] < 2 {
		t.Fatalf("rpc.server.op.read.calls = %d, want >= 2", m.Counters["rpc.server.op.read.calls"])
	}
	// Cache hits incremented across the two reads of the same blocks.
	if m.Gauges["drive.cache.hits"] <= before.Metrics.Gauges["drive.cache.hits"] {
		t.Fatalf("cache hits did not increase: %d -> %d",
			before.Metrics.Gauges["drive.cache.hits"], m.Gauges["drive.cache.hits"])
	}

	// The context request ID crossed the wire into the drive trace log.
	found := 0
	for _, ev := range sr.Trace {
		if ev.RequestID == reqID {
			found++
			if ev.Op != "read" {
				t.Fatalf("traced op = %q, want read", ev.Op)
			}
		}
	}
	if found != 2 {
		t.Fatalf("found %d traced reads with request ID %d, want 2", found, reqID)
	}

	// Client-side registry carries the RPC client family.
	cs := r.cli.Metrics().Snapshot()
	if cs.Counters["rpc.client.calls"] == 0 {
		t.Fatal("client registry recorded no RPC calls")
	}
	// The deprecated Stats view stays consistent with the registry.
	if st := r.cli.Stats(); st.RPC.Calls != cs.Counters["rpc.client.calls"] {
		t.Fatalf("Stats().RPC.Calls = %d, registry says %d", st.RPC.Calls, cs.Counters["rpc.client.calls"])
	}
}
