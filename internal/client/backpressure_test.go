package client

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"nasd/internal/drive"
	"nasd/internal/rpc"
)

// overloadedHandler answers the first `sheds` data requests with
// StatusRetryLater (carrying hint), then succeeds, recording the
// arrival time of every attempt.
type overloadedHandler struct {
	sheds int
	hint  time.Duration

	mu       sync.Mutex
	arrivals []time.Time
}

func (h *overloadedHandler) Handle(req *rpc.Request) *rpc.Reply {
	h.mu.Lock()
	h.arrivals = append(h.arrivals, time.Now())
	n := len(h.arrivals)
	h.mu.Unlock()
	if n <= h.sheds {
		return rpc.RetryLater(req.MsgID, h.hint, "test overload")
	}
	return &rpc.Reply{MsgID: req.MsgID, Status: rpc.StatusOK, Args: drive.EncodeIDReply(42)}
}

func (h *overloadedHandler) times() []time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]time.Time(nil), h.arrivals...)
}

func newOverloadedClient(t *testing.T, h *overloadedHandler, p RetryPolicy) *Drive {
	t.Helper()
	srv := rpc.NewServer(h)
	t.Cleanup(srv.Close)
	l := rpc.NewInProcListener("overload-test")
	go srv.Serve(l)
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cli := New(conn, 7, 1, WithSecurity(false), WithRetry(p))
	t.Cleanup(func() { cli.Close() })
	return cli
}

func TestRetryAfterHintHonored(t *testing.T) {
	const hint = 25 * time.Millisecond
	h := &overloadedHandler{sheds: 1, hint: hint}
	cli := newOverloadedClient(t, h, RetryPolicy{MaxAttempts: 4})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Create is deliberately non-idempotent: StatusRetryLater means
	// the drive never executed the request, so even allocation ops
	// must reissue.
	id, err := cli.Create(ctx, nil, 1)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if id != 42 {
		t.Fatalf("id = %d, want 42", id)
	}
	times := h.times()
	if len(times) != 2 {
		t.Fatalf("attempts = %d, want 2", len(times))
	}
	gap := times[1].Sub(times[0])
	if gap < hint {
		t.Fatalf("reissued after %v, before the %v retry-after hint", gap, hint)
	}
	if gap > 2*time.Second {
		t.Fatalf("reissue waited %v: hint ignored in favor of something much longer", gap)
	}
	if got := cli.Metrics().Snapshot().Counters["client.backpressure_waits"]; got != 1 {
		t.Fatalf("backpressure_waits = %d, want 1", got)
	}
}

func TestBackpressureRetriesSkipBudget(t *testing.T) {
	// Budget 1 = a single token: three backpressure rounds would
	// exhaust it twice over if sheds spent tokens. They must not —
	// budget guards failure amplification, and shed requests never
	// executed.
	h := &overloadedHandler{sheds: 3, hint: time.Millisecond}
	cli := newOverloadedClient(t, h, RetryPolicy{MaxAttempts: 6, Budget: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cli.Create(ctx, nil, 1); err != nil {
		t.Fatalf("create: %v", err)
	}
	snap := cli.Metrics().Snapshot()
	if got := snap.Counters["client.retries_exhausted"]; got != 0 {
		t.Fatalf("retries_exhausted = %d: backpressure consumed the retry budget", got)
	}
	if got := snap.Counters["client.retries"]; got != 3 {
		t.Fatalf("retries = %d, want 3", got)
	}
}

func TestBackpressureBoundedByCallerDeadline(t *testing.T) {
	// A drive that sheds forever: the hinted waits must stop at the
	// caller's deadline, not spin MaxAttempts out past it.
	h := &overloadedHandler{sheds: 1 << 30, hint: 50 * time.Millisecond}
	cli := newOverloadedClient(t, h, RetryPolicy{MaxAttempts: 100})

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cli.Create(ctx, nil, 1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("create succeeded against a permanently shedding drive")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want deadline or overload", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("returned after %v, far past the 120ms caller deadline", elapsed)
	}
}

func TestErrOverloadedMapping(t *testing.T) {
	err := &RemoteError{Status: rpc.StatusRetryLater, Msg: "x", RetryAfter: time.Second}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("StatusRetryLater does not match ErrOverloaded")
	}
	if errors.Is(err, ErrAuth) {
		t.Fatal("overload must not read as an auth failure")
	}
	if errors.Is(&RemoteError{Status: rpc.StatusError}, ErrOverloaded) {
		t.Fatal("generic error must not read as overload")
	}
}
