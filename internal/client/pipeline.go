package client

import (
	"context"
	"errors"
	"strconv"
	"sync"

	"nasd/internal/capability"
	"nasd/internal/rpc"
)

// This file implements striped-transfer pipelining over the multiplexed
// RPC connection: a large read or write is split into fragments and up
// to window fragments are kept in flight at once, so the drive's media
// transfer overlaps the SAN transfer of neighbouring fragments (the
// Zebra-style pipelined stripe access the paper's Figure 9 workload
// depends on). Fragments that fail with a transient drive error are
// re-issued once; re-issues are visible in Stats().Retries.

// transient reports whether a fragment failure is worth one retry:
// generic drive errors may be momentary (cache pressure, write-behind
// stalls), while auth failures, replays, missing objects, and quota
// rejections name permanent conditions. Transport errors are
// retryable when the handle has a dialer: fragments are idempotent
// byte-range ops, and do() reconnects before reissuing — so a link
// severed mid-window resumes from the unacked fragments instead of
// killing the whole transfer.
func (d *Drive) transient(err error) bool {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Status == rpc.StatusError
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false // the caller's context, not the link
	}
	return d.dial != nil
}

// fragPlan describes one fragment of a pipelined transfer.
type fragPlan struct {
	index int
	off   uint64 // object offset
	start int    // offset into the caller's buffer
	n     int
}

// planFragments splits [0, n) into fragSize pieces.
func planFragments(off uint64, n, fragSize int) []fragPlan {
	frags := make([]fragPlan, 0, (n+fragSize-1)/fragSize)
	for start := 0; start < n; start += fragSize {
		fn := n - start
		if fn > fragSize {
			fn = fragSize
		}
		frags = append(frags, fragPlan{index: len(frags), off: off + uint64(start), start: start, n: fn})
	}
	return frags
}

// runWindowed executes op over frags with at most window in flight,
// canceling the remainder after the first failure. It returns the first
// real (non-cancellation) error, or ctx's error if the caller canceled.
func (d *Drive) runWindowed(ctx context.Context, frags []fragPlan, window int, op func(ctx context.Context, f fragPlan) error) error {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(frags))
	sem := make(chan struct{}, window)
	var wg sync.WaitGroup
	for _, f := range frags {
		if cctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(f fragPlan) {
			defer wg.Done()
			defer func() { <-sem }()
			err := op(cctx, f)
			if err != nil && d.transient(err) && cctx.Err() == nil {
				d.retries.Inc()
				err = op(cctx, f)
			}
			if err != nil {
				errs[f.index] = err
				cancel()
			}
		}(f)
	}
	wg.Wait()
	var firstCancel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if firstCancel == nil {
				firstCancel = err
			}
			continue
		}
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstCancel
}

// ReadPipelined fetches object bytes [off, off+n) as a window of
// concurrent fragment reads. Short reads at end-of-object truncate the
// result exactly as a single Read would: data is returned up to the
// first fragment that came back short.
func (d *Drive) ReadPipelined(ctx context.Context, cap *capability.Capability, part uint16, obj, off uint64, n int) ([]byte, error) {
	if n <= d.fragSize {
		return d.Read(ctx, cap, part, obj, off, n)
	}
	out := make([]byte, n)
	frags := planFragments(off, n, d.fragSize)
	// The window gets a parent span; each fragment's Read opens a child
	// via ctx, so the timeline shows the fragments overlapping in flight.
	ctx, sp := d.spans.StartSpan(ctx, "client.read_pipelined")
	sp.Annotate("frags", strconv.Itoa(len(frags)))
	sp.Annotate("window", strconv.Itoa(d.window))
	sp.Annotate("bytes", strconv.Itoa(n))
	defer sp.End()
	got := make([]int, len(frags))
	err := d.runWindowed(ctx, frags, d.window, func(cctx context.Context, f fragPlan) error {
		// ReadInto recycles each fragment's reply frame as soon as its
		// bytes are copied out, so a deep window cycles a fixed set of
		// pooled buffers instead of allocating one frame per fragment.
		n, err := d.ReadInto(cctx, cap, part, obj, f.off, out[f.start:f.start+f.n])
		if err != nil {
			return err
		}
		got[f.index] = n
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for i, f := range frags {
		total += got[i]
		if got[i] < f.n {
			break
		}
	}
	return out[:total], nil
}

// WritePipelined stores data at off as a window of concurrent fragment
// writes. Fragments cover disjoint ranges, so completion order does not
// affect the final contents; after an error the write may have landed
// partially, exactly like a torn serial write.
func (d *Drive) WritePipelined(ctx context.Context, cap *capability.Capability, part uint16, obj, off uint64, data []byte) error {
	if len(data) <= d.fragSize {
		return d.Write(ctx, cap, part, obj, off, data)
	}
	frags := planFragments(off, len(data), d.fragSize)
	ctx, sp := d.spans.StartSpan(ctx, "client.write_pipelined")
	sp.Annotate("frags", strconv.Itoa(len(frags)))
	sp.Annotate("window", strconv.Itoa(d.window))
	sp.Annotate("bytes", strconv.Itoa(len(data)))
	defer sp.End()
	return d.runWindowed(ctx, frags, d.window, func(cctx context.Context, f fragPlan) error {
		return d.Write(cctx, cap, part, obj, f.off, data[f.start:f.start+f.n])
	})
}
