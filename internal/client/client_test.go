package client

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/object"
	"nasd/internal/rpc"
)

// testCtx is the background context threaded through the package tests.
var testCtx = context.Background()

// testRig wires a secure drive to a client over an in-process transport
// and plays the file manager's role of minting capabilities from the
// shared master key.
type testRig struct {
	drv      *drive.Drive
	cli      *Drive
	srv      *rpc.Server
	listener *rpc.InProcListener
	fmKeys   *crypt.Hierarchy // file manager's independently derived copy
	master   crypt.Key
}

func newRig(t *testing.T, secure bool) *testRig {
	t.Helper()
	master := crypt.NewRandomKey()
	dev := blockdev.NewMemDisk(4096, 8192)
	drv, err := drive.NewFormat(dev, drive.Config{ID: 7, Master: master, Secure: secure})
	if err != nil {
		t.Fatal(err)
	}
	l := rpc.NewInProcListener("drive7")
	srv := drv.Serve(l)
	t.Cleanup(srv.Close)
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cli := New(conn, 7, 1001, WithSecurity(secure))
	t.Cleanup(func() { cli.Close() })
	return &testRig{drv: drv, cli: cli, srv: srv, listener: l,
		fmKeys: crypt.NewHierarchy(master), master: master}
}

// mkpart creates a partition on the drive and mirrors the key state in
// the file manager's hierarchy.
func (r *testRig) mkpart(t *testing.T, id uint16, quota int64) {
	t.Helper()
	if err := r.cli.CreatePartition(testCtx, crypt.KeyID{Type: crypt.MasterKey}, r.master, id, quota); err != nil {
		t.Fatal(err)
	}
	if err := r.fmKeys.AddPartition(id); err != nil {
		t.Fatal(err)
	}
}

// mint issues a capability the way a file manager would.
func (r *testRig) mint(t *testing.T, part uint16, obj, objVer uint64, rights capability.Rights) capability.Capability {
	t.Helper()
	kid, key, err := r.fmKeys.CurrentWorkingKey(part)
	if err != nil {
		t.Fatal(err)
	}
	pub := capability.Public{
		DriveID:   7,
		Partition: part,
		Object:    obj,
		ObjVer:    objVer,
		Rights:    rights,
		Expiry:    time.Now().Add(time.Hour).UnixNano(),
		Key:       kid,
	}
	return capability.Mint(pub, key)
}

func TestSecureEndToEnd(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)

	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	id, err := r.cli.Create(testCtx, &createCap, 1)
	if err != nil {
		t.Fatal(err)
	}

	rwCap := r.mint(t, 1, id, 1, capability.Read|capability.Write|capability.GetAttr)
	data := bytes.Repeat([]byte("nasd!"), 4000)
	if err := r.cli.Write(testCtx, &rwCap, 1, id, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := r.cli.Read(testCtx, &rwCap, 1, id, 0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	at, err := r.cli.GetAttr(testCtx, &rwCap, 1, id)
	if err != nil {
		t.Fatal(err)
	}
	if at.Size != uint64(len(data)) {
		t.Fatalf("size = %d", at.Size)
	}
}

func TestInsecureModeSkipsChecks(t *testing.T) {
	r := newRig(t, false)
	r.mkpart(t, 1, 0)
	// No capability at all.
	id, err := r.cli.Create(testCtx, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.cli.Write(testCtx, nil, 1, id, 0, []byte("open season")); err != nil {
		t.Fatal(err)
	}
	got, err := r.cli.Read(testCtx, nil, 1, id, 0, 11)
	if err != nil || string(got) != "open season" {
		t.Fatalf("read = %q, %v", got, err)
	}
}

func TestMissingCapabilityRejected(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)
	if _, err := r.cli.Create(testCtx, nil, 1); !errors.Is(err, ErrAuth) {
		t.Fatalf("create without capability: %v", err)
	}
}

func TestInsufficientRightsRejected(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)
	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	id, err := r.cli.Create(testCtx, &createCap, 1)
	if err != nil {
		t.Fatal(err)
	}
	roCap := r.mint(t, 1, id, 1, capability.Read)
	if err := r.cli.Write(testCtx, &roCap, 1, id, 0, []byte("x")); !errors.Is(err, ErrAuth) {
		t.Fatalf("write with read-only capability: %v", err)
	}
}

func TestVersionBumpRevokes(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)
	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	id, _ := r.cli.Create(testCtx, &createCap, 1)
	rwCap := r.mint(t, 1, id, 1, capability.Read|capability.Write|capability.SetAttr)
	if err := r.cli.Write(testCtx, &rwCap, 1, id, 0, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// File manager revokes by bumping the logical version.
	if _, err := r.cli.BumpVersion(testCtx, &rwCap, 1, id); err != nil {
		t.Fatal(err)
	}
	if _, err := r.cli.Read(testCtx, &rwCap, 1, id, 0, 2); !errors.Is(err, ErrAuth) {
		t.Fatalf("read with revoked capability: %v", err)
	}
	// A fresh capability against the new version works.
	fresh := r.mint(t, 1, id, 2, capability.Read)
	if got, err := r.cli.Read(testCtx, &fresh, 1, id, 0, 2); err != nil || string(got) != "v1" {
		t.Fatalf("read with fresh capability: %q, %v", got, err)
	}
}

func TestByteRangeRestriction(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)
	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	id, _ := r.cli.Create(testCtx, &createCap, 1)
	w := r.mint(t, 1, id, 1, capability.Write)
	if err := r.cli.Write(testCtx, &w, 1, id, 0, make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}

	kid, key, _ := r.fmKeys.CurrentWorkingKey(1)
	pub := capability.Public{
		DriveID: 7, Partition: 1, Object: id, ObjVer: 1,
		Rights: capability.Read, Offset: 0, Length: 4096,
		Expiry: time.Now().Add(time.Hour).UnixNano(), Key: kid,
	}
	ranged := capability.Mint(pub, key)
	if _, err := r.cli.Read(testCtx, &ranged, 1, id, 0, 4096); err != nil {
		t.Fatalf("in-range read: %v", err)
	}
	if _, err := r.cli.Read(testCtx, &ranged, 1, id, 4096, 4096); !errors.Is(err, ErrAuth) {
		t.Fatalf("out-of-range read: %v", err)
	}
}

func TestWorkingKeyRotationViaSetKey(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)
	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	id, _ := r.cli.Create(testCtx, &createCap, 1)
	oldCap := r.mint(t, 1, id, 1, capability.Read)

	// File manager rotates the working key on both sides.
	newID, err := r.fmKeys.RotateWorkingKey(1)
	if err != nil {
		t.Fatal(err)
	}
	newKey, _ := r.fmKeys.Lookup(newID)
	if err := r.cli.SetKey(testCtx, crypt.KeyID{Type: crypt.MasterKey}, r.master, newID, newKey); err != nil {
		t.Fatal(err)
	}
	// Old capabilities die wholesale.
	if _, err := r.cli.Read(testCtx, &oldCap, 1, id, 0, 1); !errors.Is(err, ErrAuth) {
		t.Fatalf("capability survived key rotation: %v", err)
	}
	// New ones verify.
	fresh := r.mint(t, 1, id, 1, capability.Read)
	if _, err := r.cli.Read(testCtx, &fresh, 1, id, 0, 1); err != nil {
		t.Fatalf("fresh capability after rotation: %v", err)
	}
}

func TestAdminRequiresDriveKey(t *testing.T) {
	r := newRig(t, true)
	wrong := crypt.NewRandomKey()
	err := r.cli.CreatePartition(testCtx, crypt.KeyID{Type: crypt.MasterKey}, wrong, 5, 0)
	if !errors.Is(err, ErrAuth) {
		t.Fatalf("partition create with wrong key: %v", err)
	}
	// Working keys cannot authorize management.
	r.mkpart(t, 1, 0)
	kid, key, _ := r.fmKeys.CurrentWorkingKey(1)
	err = r.cli.CreatePartition(testCtx, kid, key, 6, 0)
	if !errors.Is(err, ErrAuth) {
		t.Fatalf("partition create with working key: %v", err)
	}
}

func TestPartitionManagementRoundTrip(t *testing.T) {
	r := newRig(t, true)
	auth := crypt.KeyID{Type: crypt.MasterKey}
	r.mkpart(t, 2, 128)
	p, err := r.cli.GetPartition(testCtx, auth, r.master, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.QuotaBlocks != 128 {
		t.Fatalf("quota = %d", p.QuotaBlocks)
	}
	if err := r.cli.ResizePartition(testCtx, auth, r.master, 2, 256); err != nil {
		t.Fatal(err)
	}
	p, _ = r.cli.GetPartition(testCtx, auth, r.master, 2)
	if p.QuotaBlocks != 256 {
		t.Fatalf("resized quota = %d", p.QuotaBlocks)
	}
	if err := r.cli.RemovePartition(testCtx, auth, r.master, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.cli.GetPartition(testCtx, auth, r.master, 2); err == nil {
		t.Fatal("removed partition still present")
	}
}

func TestVersionObjectAndList(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)
	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	id, _ := r.cli.Create(testCtx, &createCap, 1)
	rw := r.mint(t, 1, id, 1, capability.Read|capability.Write|capability.Version)
	if err := r.cli.Write(testCtx, &rw, 1, id, 0, []byte("snapshot me")); err != nil {
		t.Fatal(err)
	}
	snapID, err := r.cli.VersionObject(testCtx, &rw, 1, id)
	if err != nil {
		t.Fatal(err)
	}
	snapCap := r.mint(t, 1, snapID, 1, capability.Read)
	got, err := r.cli.Read(testCtx, &snapCap, 1, snapID, 0, 11)
	if err != nil || string(got) != "snapshot me" {
		t.Fatalf("snapshot read = %q, %v", got, err)
	}

	listCap := r.mint(t, 1, 0, 0, capability.Read)
	ids, err := r.cli.List(testCtx, &listCap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("list = %v", ids)
	}
}

func TestSetAttrUninterp(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)
	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	id, _ := r.cli.Create(testCtx, &createCap, 1)
	sa := r.mint(t, 1, id, 1, capability.SetAttr|capability.GetAttr)
	var attrs object.Attributes
	copy(attrs.Uninterp[:], []byte("uid=3 gid=4 mode=0644"))
	if err := r.cli.SetAttr(testCtx, &sa, 1, id, attrs, object.SetUninterp); err != nil {
		t.Fatal(err)
	}
	got, err := r.cli.GetAttr(testCtx, &sa, 1, id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got.Uninterp[:], []byte("uid=3")) {
		t.Fatal("uninterpreted attrs not persisted")
	}
}

func TestTamperedRequestRejected(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)
	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	id, _ := r.cli.Create(testCtx, &createCap, 1)
	w := r.mint(t, 1, id, 1, capability.Write)

	// Hand-build a request whose digest covers different data than it
	// carries (a man-in-the-middle swapped the payload).
	args := (&drive.WriteArgs{Partition: 1, Object: id, Offset: 0}).Encode()
	req := &rpc.Request{
		Proc:  uint16(drive.OpWriteObject),
		Args:  args,
		Data:  []byte("genuine"),
		Nonce: crypt.Nonce{Client: 555, Counter: 1},
	}
	req.Cap = w.Public.Encode()
	req.ReqDig = w.SignRequest(req.SigningBody())
	req.Data = []byte("swapped") // tamper after signing
	rep := r.drv.Handle(req)
	if rep.Status != rpc.StatusAuthFailure {
		t.Fatalf("tampered payload status = %v", rep.Status)
	}
}

func TestReplayRejected(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)
	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	id, _ := r.cli.Create(testCtx, &createCap, 1)
	rd := r.mint(t, 1, id, 1, capability.Read)

	args := (&drive.ReadArgs{Partition: 1, Object: id, Offset: 0, Length: 1}).Encode()
	req := &rpc.Request{
		Proc:  uint16(drive.OpReadObject),
		Args:  args,
		Nonce: crypt.Nonce{Client: 777, Counter: 42},
	}
	req.Cap = rd.Public.Encode()
	req.ReqDig = rd.SignRequest(req.SigningBody())
	if rep := r.drv.Handle(req); rep.Status != rpc.StatusOK {
		t.Fatalf("first use: %v %s", rep.Status, rep.Msg)
	}
	if rep := r.drv.Handle(req); rep.Status != rpc.StatusReplay {
		t.Fatalf("replay status = %v", rep.Status)
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	master := crypt.NewRandomKey()
	dev := blockdev.NewMemDisk(4096, 4096)
	drv, err := drive.NewFormat(dev, drive.Config{ID: 9, Master: master, Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	l, err := rpc.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := drv.Serve(l)
	defer srv.Close()

	conn, err := rpc.DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cli := New(conn, 9, 2002)
	defer cli.Close()

	fm := crypt.NewHierarchy(master)
	if err := cli.CreatePartition(testCtx, crypt.KeyID{Type: crypt.MasterKey}, master, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := fm.AddPartition(1); err != nil {
		t.Fatal(err)
	}
	kid, key, _ := fm.CurrentWorkingKey(1)
	mk := func(obj, ver uint64, rights capability.Rights) capability.Capability {
		return capability.Mint(capability.Public{
			DriveID: 9, Partition: 1, Object: obj, ObjVer: ver, Rights: rights,
			Expiry: time.Now().Add(time.Hour).UnixNano(), Key: kid,
		}, key)
	}
	cc := mk(0, 0, capability.CreateObj)
	id, err := cli.Create(testCtx, &cc, 1)
	if err != nil {
		t.Fatal(err)
	}
	rw := mk(id, 1, capability.Read|capability.Write)
	payload := bytes.Repeat([]byte{0xA5}, 1<<20)
	if err := cli.Write(testCtx, &rw, 1, id, 0, payload); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Read(testCtx, &rw, 1, id, 0, len(payload))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("TCP round trip failed: %v", err)
	}
	if err := cli.Flush(testCtx); err != nil {
		t.Fatal(err)
	}

	// Reopen the device: data survives.
	srv.Close()
	drv2, err := drive.Open(dev, drive.Config{ID: 9, Master: master, Secure: false})
	if err != nil {
		t.Fatal(err)
	}
	data, err := drv2.Store().Read(1, id, 0, 16)
	if err != nil || !bytes.Equal(data, payload[:16]) {
		t.Fatalf("data lost across reopen: %v", err)
	}
}

func TestAccountingCharged(t *testing.T) {
	r := newRig(t, false)
	r.mkpart(t, 1, 0)
	id, _ := r.cli.Create(testCtx, nil, 1)
	if err := r.cli.Write(testCtx, nil, 1, id, 0, make([]byte, 64*1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.cli.Read(testCtx, nil, 1, id, 0, 64*1024); err != nil {
		t.Fatal(err)
	}
	stats, in, out := r.drv.Accounting().Stats()
	if stats[drive.OpWriteObject].Count != 1 || stats[drive.OpReadObject].Count != 1 {
		t.Fatalf("op counts = %+v", stats)
	}
	if in < 64*1024 || out < 64*1024 {
		t.Fatalf("bytes = %d in, %d out", in, out)
	}
	if stats[drive.OpReadObject].CommsInstr == 0 || stats[drive.OpReadObject].ObjectInstr == 0 {
		t.Fatal("no instructions charged")
	}
}
