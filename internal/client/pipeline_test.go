package client

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"nasd/internal/capability"
)

// pipeDrive dials a fresh connection on the rig's listener with small
// pipelining fragments so tests exercise multi-fragment windows without
// multi-megabyte payloads.
func pipeDrive(t *testing.T, r *testRig, clientID uint64, opts ...Option) *Drive {
	t.Helper()
	conn, err := r.listener.Dial()
	if err != nil {
		t.Fatal(err)
	}
	d := New(conn, 7, clientID, append([]Option{WithFragmentSize(4 << 10), WithWindow(4)}, opts...)...)
	t.Cleanup(func() { d.Close() })
	return d
}

func TestReadPipelinedMatchesRead(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)
	d := pipeDrive(t, r, 4001)

	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	id, err := d.Create(testCtx, &createCap, 1)
	if err != nil {
		t.Fatal(err)
	}
	rw := r.mint(t, 1, id, 1, capability.Read|capability.Write)
	data := make([]byte, 100<<10) // 25 fragments at 4 KB
	rand.New(rand.NewSource(31)).Read(data)
	if err := d.WritePipelined(testCtx, &rw, 1, id, 0, data); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct{ off, n int }{
		{0, len(data)},       // full object
		{1000, 50<<10 + 17},  // unaligned interior window
		{0, 4 << 10},         // exactly one fragment (serial fallback)
		{90 << 10, 64 << 10}, // runs past EOF: truncates like Read
		{len(data), 8 << 10}, // entirely past EOF
	} {
		want, err := d.Read(testCtx, &rw, 1, id, uint64(tc.off), tc.n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.ReadPipelined(testCtx, &rw, 1, id, uint64(tc.off), tc.n)
		if err != nil {
			t.Fatalf("pipelined read off=%d n=%d: %v", tc.off, tc.n, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pipelined read off=%d n=%d: %d bytes != serial %d bytes", tc.off, tc.n, len(got), len(want))
		}
	}
}

func TestWritePipelinedDisjointFragments(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)
	d := pipeDrive(t, r, 4002)

	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	id, _ := d.Create(testCtx, &createCap, 1)
	rw := r.mint(t, 1, id, 1, capability.Read|capability.Write)

	// Overlapping pipelined writes at an unaligned offset: the final
	// contents equal what serial writes would produce.
	base := bytes.Repeat([]byte{0x11}, 60<<10)
	if err := d.WritePipelined(testCtx, &rw, 1, id, 0, base); err != nil {
		t.Fatal(err)
	}
	patch := bytes.Repeat([]byte{0x22}, 20<<10)
	if err := d.WritePipelined(testCtx, &rw, 1, id, 12345, patch); err != nil {
		t.Fatal(err)
	}
	copy(base[12345:], patch)
	got, err := d.ReadPipelined(testCtx, &rw, 1, id, 0, len(base))
	if err != nil || !bytes.Equal(got, base) {
		t.Fatalf("contents after overlapping pipelined writes: %v", err)
	}
}

// TestPipelinedMixedStress hammers ONE connection with concurrent
// pipelined readers and writers on separate objects. Under -race this
// exercises the mux, the fragment window, the nonce counter, and the
// drive's replay window together.
func TestPipelinedMixedStress(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)
	d := pipeDrive(t, r, 4003)

	const nWorkers = 4
	const rounds = 8
	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	var wg sync.WaitGroup
	errs := make([]error, nWorkers)
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = func() error {
				id, err := d.Create(testCtx, &createCap, 1)
				if err != nil {
					return err
				}
				rw := r.mint(t, 1, id, 1, capability.Read|capability.Write)
				payload := bytes.Repeat([]byte{byte(w + 1)}, 32<<10)
				for i := 0; i < rounds; i++ {
					if err := d.WritePipelined(testCtx, &rw, 1, id, 0, payload); err != nil {
						return err
					}
					got, err := d.ReadPipelined(testCtx, &rw, 1, id, 0, len(payload))
					if err != nil {
						return err
					}
					if !bytes.Equal(got, payload) {
						return errors.New("corrupted pipelined round trip")
					}
				}
				return nil
			}()
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", w, err)
		}
	}
	if st := d.Stats(); st.RPC.InFlight != 0 {
		t.Fatalf("in-flight after stress = %d", st.RPC.InFlight)
	}
}

// TestCancellationMidStream cancels a context in the middle of a
// pipelined read and verifies (a) the call fails with the context's
// error, (b) the client mux drains to zero in-flight, and (c) the same
// connection keeps working — the drive side cleaned up rather than
// wedging the connection.
func TestCancellationMidStream(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)
	d := pipeDrive(t, r, 4004, WithWindow(2))

	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	id, _ := d.Create(testCtx, &createCap, 1)
	rw := r.mint(t, 1, id, 1, capability.Read|capability.Write)
	data := make([]byte, 256<<10) // 64 fragments: plenty of stream left to cancel
	rand.New(rand.NewSource(32)).Read(data)
	if err := d.WritePipelined(testCtx, &rw, 1, id, 0, data); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond) // land mid-stream
		cancel()
	}()
	_, err := d.ReadPipelined(ctx, &rw, 1, id, 0, len(data))
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled read returned %v", err)
	}
	if err == nil {
		t.Log("read finished before cancellation landed; cleanup assertions still apply")
	}

	// Drive-side cleanup: every abandoned fragment drains and the mux
	// forgets it.
	deadline := time.Now().Add(2 * time.Second)
	for d.Stats().RPC.InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight stuck at %d after cancellation", d.Stats().RPC.InFlight)
		}
		time.Sleep(time.Millisecond)
	}
	// The connection (and the drive's replay window) survive: a fresh
	// pipelined read on the same connection returns full data.
	got, err := d.ReadPipelined(testCtx, &rw, 1, id, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after cancellation: %v", err)
	}
}

// TestPipelinedRetriesSurfaceInStats: fragment retries show up in the
// Retries counter (none expected on a healthy drive).
func TestPipelinedStatsExposed(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)
	d := pipeDrive(t, r, 4005)
	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	id, _ := d.Create(testCtx, &createCap, 1)
	rw := r.mint(t, 1, id, 1, capability.Read|capability.Write)
	if err := d.WritePipelined(testCtx, &rw, 1, id, 0, make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.RPC.Calls == 0 {
		t.Fatal("no calls recorded")
	}
	if st.Retries != 0 {
		t.Fatalf("unexpected retries on healthy drive: %d", st.Retries)
	}
}
