package client

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/rpc"
)

// newFaultRig is newRig with the connection routed through a fault
// schedule and the handle armed for retry: the rig the resilience
// tests sever, crash, and revive.
func newFaultRig(t *testing.T, p RetryPolicy, seed int64) (*testRig, *rpc.Faults) {
	t.Helper()
	master := crypt.NewRandomKey()
	dev := blockdev.NewMemDisk(4096, 8192)
	drv, err := drive.NewFormat(dev, drive.Config{ID: 7, Master: master, Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	l := rpc.NewInProcListener("drive7")
	srv := drv.Serve(l)
	t.Cleanup(srv.Close)
	f := rpc.NewFaults(seed)
	dial := func() (rpc.Conn, error) { return f.Dial(l.Dial) }
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	cli := New(conn, 7, 1001, WithSecurity(true), WithRetry(p), WithDialer(dial))
	t.Cleanup(func() { cli.Close() })
	return &testRig{drv: drv, cli: cli, srv: srv, listener: l,
		fmKeys: crypt.NewHierarchy(master), master: master}, f
}

// flakyHandler fails its first n requests with StatusError, then
// succeeds — the momentary-resource-condition shape retrySame exists
// for.
type flakyHandler struct{ remaining atomic.Int32 }

func (h *flakyHandler) Handle(req *rpc.Request) *rpc.Reply {
	if h.remaining.Add(-1) >= 0 {
		return &rpc.Reply{MsgID: req.MsgID, Status: rpc.StatusError, Msg: "transient"}
	}
	return &rpc.Reply{MsgID: req.MsgID, Status: rpc.StatusOK}
}

func TestRetryTransientStatusError(t *testing.T) {
	h := &flakyHandler{}
	h.remaining.Store(2)
	srv := rpc.NewServer(h)
	l := rpc.NewInProcListener("flaky")
	go srv.Serve(l)
	defer srv.Close()
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cli := New(conn, 7, 1, WithSecurity(false), WithRetry(RetryPolicy{MaxAttempts: 4}))
	defer cli.Close()

	if err := cli.Flush(testCtx); err != nil {
		t.Fatalf("flush despite retries: %v", err)
	}
	snap := cli.Metrics().Snapshot()
	if got := snap.Counters["client.retries"]; got != 2 {
		t.Fatalf("client.retries = %d, want 2", got)
	}
}

func TestRetryGivesUpAtMaxAttempts(t *testing.T) {
	h := &flakyHandler{}
	h.remaining.Store(1 << 20) // never recovers
	srv := rpc.NewServer(h)
	l := rpc.NewInProcListener("flaky2")
	go srv.Serve(l)
	defer srv.Close()
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cli := New(conn, 7, 1, WithSecurity(false), WithRetry(RetryPolicy{MaxAttempts: 3}))
	defer cli.Close()

	err = cli.Flush(testCtx)
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != rpc.StatusError {
		t.Fatalf("err = %v, want the remote StatusError", err)
	}
	if got := cli.Metrics().Snapshot().Counters["client.retries"]; got != 2 {
		t.Fatalf("client.retries = %d, want 2 (attempts 2 and 3)", got)
	}
}

func TestReconnectResumesPipelinedRead(t *testing.T) {
	r, f := newFaultRig(t, RetryPolicy{MaxAttempts: 6}, 1)
	r.mkpart(t, 1, 0)
	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	id, err := r.cli.Create(testCtx, &createCap, 1)
	if err != nil {
		t.Fatal(err)
	}
	rw := r.mint(t, 1, id, 1, capability.Read|capability.Write)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(3)).Read(data)
	if err := r.cli.WritePipelined(testCtx, &rw, 1, id, 0, data); err != nil {
		t.Fatal(err)
	}

	// The connection dies five sends into the read window; every
	// fragment past it must notice, share one reconnect, and reissue.
	f.SeverAfter(5)
	got, err := r.cli.ReadPipelined(testCtx, &rw, 1, id, 0, len(data))
	if err != nil {
		t.Fatalf("read across a severed connection: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted across reconnect")
	}
	snap := r.cli.Metrics().Snapshot()
	if snap.Counters["client.reconnects"] == 0 {
		t.Fatalf("no reconnect recorded; counters = %v", snap.Counters)
	}
	if snap.Counters["client.retries"] == 0 {
		t.Fatalf("no retry recorded; counters = %v", snap.Counters)
	}
}

func TestRetryNeverOutlivesDeadline(t *testing.T) {
	r, f := newFaultRig(t, RetryPolicy{MaxAttempts: 50, BaseBackoff: 10 * time.Millisecond}, 1)
	r.mkpart(t, 1, 0)
	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	id, err := r.cli.Create(testCtx, &createCap, 1)
	if err != nil {
		t.Fatal(err)
	}
	rw := r.mint(t, 1, id, 1, capability.Read)

	f.Down()
	ctx, cancel := context.WithTimeout(testCtx, 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = r.cli.Read(ctx, &rw, 1, id, 0, 16)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("read from a downed drive succeeded")
	}
	// 50 attempts of exponential backoff would run for seconds; the
	// 150 ms deadline must cut them off.
	if elapsed > 600*time.Millisecond {
		t.Fatalf("retries ran %v past a 150ms deadline", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
		t.Fatalf("err = %v with live context", err)
	}
}

func TestNeverSentCreateRetriesAndHeals(t *testing.T) {
	r, f := newFaultRig(t, RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond}, 1)
	r.mkpart(t, 1, 0)
	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)

	before, err := r.drv.Store().List(1)
	if err != nil {
		t.Fatal(err)
	}

	f.Down()
	if _, err := r.cli.Create(testCtx, &createCap, 1); err == nil {
		t.Fatal("create on a downed drive succeeded")
	}
	// Every attempt failed before its request left the client, so the
	// drive must have executed nothing — the condition that makes
	// retrying a non-idempotent op safe here.
	after, err := r.drv.Store().List(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("downed drive executed a create: %d -> %d objects", len(before), len(after))
	}

	// After revival the same handle heals within one call: the first
	// attempt sees the dead connection (never sent), reconnects, and
	// the reissue succeeds.
	f.Revive()
	id, err := r.cli.Create(testCtx, &createCap, 1)
	if err != nil {
		t.Fatalf("create after revive: %v", err)
	}
	if id == 0 {
		t.Fatal("create returned object 0")
	}
	if got := r.cli.Metrics().Snapshot().Counters["client.reconnects"]; got == 0 {
		t.Fatal("healing create recorded no reconnect")
	}
}

func TestFateUnknownCreateNotRetried(t *testing.T) {
	// The drive's replies run through a fault schedule; the requests
	// themselves arrive and execute. A lost reply leaves the create's
	// fate unknown, and a blind retry would allocate a second object.
	master := crypt.NewRandomKey()
	dev := blockdev.NewMemDisk(4096, 8192)
	drv, err := drive.NewFormat(dev, drive.Config{ID: 7, Master: master, Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	l := rpc.NewInProcListener("drive7")
	f := rpc.NewFaults(1)
	srv := drv.Serve(f.WrapListener(l))
	t.Cleanup(srv.Close)
	dial := func() (rpc.Conn, error) { return l.Dial() }
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	cli := New(conn, 7, 1001, WithSecurity(true),
		WithRetry(RetryPolicy{MaxAttempts: 5, AttemptTimeout: 80 * time.Millisecond}),
		WithDialer(dial))
	t.Cleanup(func() { cli.Close() })
	r := &testRig{drv: drv, cli: cli, srv: srv, listener: l,
		fmKeys: crypt.NewHierarchy(master), master: master}
	r.mkpart(t, 1, 0)
	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)

	before, err := drv.Store().List(1)
	if err != nil {
		t.Fatal(err)
	}
	f.Partition(true) // replies vanish; requests already landed
	if _, err := cli.Create(testCtx, &createCap, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("create with lost reply = %v, want DeadlineExceeded", err)
	}
	f.Partition(false)
	after, err := drv.Store().List(1)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one create executed: the timed-out attempt was never
	// blindly reissued.
	if len(after) != len(before)+1 {
		t.Fatalf("fate-unknown create executed %d times, want 1", len(after)-len(before))
	}
}

func TestRetryBudgetExhaustionFailsFast(t *testing.T) {
	h := &flakyHandler{}
	h.remaining.Store(1 << 20)
	srv := rpc.NewServer(h)
	l := rpc.NewInProcListener("budget")
	go srv.Serve(l)
	defer srv.Close()
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cli := New(conn, 7, 1, WithSecurity(false), WithRetry(RetryPolicy{MaxAttempts: 10, Budget: 1}))
	defer cli.Close()

	// The one-token budget covers a single retry; afterwards failures
	// surface on the first attempt.
	for i := 0; i < 3; i++ {
		if err := cli.Flush(testCtx); err == nil {
			t.Fatal("flush succeeded against a permanently failing drive")
		}
	}
	snap := cli.Metrics().Snapshot()
	if got := snap.Counters["client.retries"]; got != 1 {
		t.Fatalf("client.retries = %d, want exactly the budgeted 1", got)
	}
	if got := snap.Counters["client.retries_exhausted"]; got == 0 {
		t.Fatal("budget exhaustion not recorded")
	}
}

func TestExpiredCapabilityTyped(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)
	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	id, err := r.cli.Create(testCtx, &createCap, 1)
	if err != nil {
		t.Fatal(err)
	}

	kid, key, err := r.fmKeys.CurrentWorkingKey(1)
	if err != nil {
		t.Fatal(err)
	}
	expired := capability.Mint(capability.Public{
		DriveID: 7, Partition: 1, Object: id, ObjVer: 1,
		Rights: capability.Read,
		Expiry: time.Now().Add(-time.Minute).UnixNano(),
		Key:    kid,
	}, key)

	_, err = r.cli.Read(testCtx, &expired, 1, id, 0, 16)
	if !errors.Is(err, ErrCapabilityExpired) {
		t.Fatalf("err = %v, want ErrCapabilityExpired", err)
	}
	// Expiry is still an authorization failure: legacy funnels keep
	// working.
	if !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v, want ErrAuth to match too", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != rpc.StatusCapExpired {
		t.Fatalf("err = %v, want StatusCapExpired on the wire", err)
	}
}
