package client

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// TestFleetAggregationRoundTrip runs four secure in-process drives,
// generates traffic for two tenants (partitions) under one client
// trace, then polls every drive over the stats RPC and checks the
// fleet aggregation end to end: merged counters equal the per-drive
// sum, the per-tenant split attributes exactly the ops each partition
// issued, the merged p99 exemplar names a trace resolvable back to
// drive-side spans, and each drive's event ring came along with its
// snapshot.
func TestFleetAggregationRoundTrip(t *testing.T) {
	const nDrives = 4
	type node struct {
		cli    *Drive
		events *telemetry.EventLog
		keys   *crypt.Hierarchy
		master crypt.Key
		id     uint64
	}
	clientSpans := telemetry.NewSpanLog(512)
	var nodes []*node
	for i := 0; i < nDrives; i++ {
		master := crypt.NewRandomKey()
		events := telemetry.NewEventLog(64)
		drv, err := drive.NewFormat(blockdev.NewMemDisk(4096, 8192), drive.Config{
			ID: uint64(10 + i), Master: master, Secure: true, Events: events,
		})
		if err != nil {
			t.Fatal(err)
		}
		l := rpc.NewInProcListener(fmt.Sprintf("fleet%d", i))
		srv := drv.Serve(l)
		t.Cleanup(srv.Close)
		conn, err := l.Dial()
		if err != nil {
			t.Fatal(err)
		}
		cli := New(conn, uint64(10+i), uint64(3000+i), WithSecurity(true), WithSpans(clientSpans))
		t.Cleanup(func() { cli.Close() })
		nodes = append(nodes, &node{
			cli: cli, events: events, keys: crypt.NewHierarchy(master),
			master: master, id: uint64(10 + i),
		})
	}

	mint := func(n *node, part uint16, obj, ver uint64, rights capability.Rights) capability.Capability {
		kid, key, err := n.keys.CurrentWorkingKey(part)
		if err != nil {
			t.Fatal(err)
		}
		return capability.Mint(capability.Public{
			DriveID: n.id, Partition: part, Object: obj, ObjVer: ver,
			Rights: rights, Expiry: time.Now().Add(time.Hour).UnixNano(), Key: kid,
		}, key)
	}

	for _, n := range nodes {
		for _, part := range []uint16{1, 2} {
			if err := n.cli.CreatePartition(testCtx, crypt.KeyID{Type: crypt.MasterKey}, n.master, part, 0); err != nil {
				t.Fatal(err)
			}
			if err := n.keys.AddPartition(part); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Tenant traffic, all under one client root span so drive-side
	// exemplars carry its trace ID: partition 1 writes and reads three
	// objects per drive, partition 2 one.
	ctx, root := clientSpans.StartSpan(testCtx, "test.fleet")
	payload := bytes.Repeat([]byte("fleet"), 256)
	opsPerTenant := map[uint16]int{1: 3, 2: 1}
	for _, n := range nodes {
		for part, count := range opsPerTenant {
			for j := 0; j < count; j++ {
				cc := mint(n, part, 0, 0, capability.CreateObj)
				obj, err := n.cli.Create(ctx, &cc, part)
				if err != nil {
					t.Fatal(err)
				}
				wc := mint(n, part, obj, 1, capability.Write)
				if err := n.cli.Write(ctx, &wc, part, obj, 0, payload); err != nil {
					t.Fatal(err)
				}
				rc := mint(n, part, obj, 1, capability.Read)
				got, err := n.cli.Read(ctx, &rc, part, obj, 0, len(payload))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, payload) {
					t.Fatal("read mismatch")
				}
			}
		}
	}
	root.End()
	tid := root.Context().TraceID

	// Poll every drive the way nasdctl fleet does: metrics plus the
	// event tail in one stats round trip per drive.
	var drives []telemetry.FleetDrive
	var sumWrites uint64
	for i, n := range nodes {
		sr, err := n.cli.ServerStats(testCtx, drive.StatsArgs{EventN: 32})
		if err != nil {
			t.Fatal(err)
		}
		if sr.DriveID != n.id {
			t.Fatalf("drive %d reported ID %d", i, sr.DriveID)
		}
		if len(sr.Events) == 0 {
			t.Fatalf("drive %d returned no events (its ring should hold at least its start event)", i)
		}
		drives = append(drives, telemetry.FleetDrive{
			Addr: fmt.Sprintf("fleet%d", i), DriveID: sr.DriveID,
			Metrics: sr.Metrics, Events: sr.Events,
		})
		sumWrites += sr.Metrics.Counters["drive.op.write.calls"]
	}
	// A down drive stays listed but contributes nothing to the merge.
	drives = append(drives, telemetry.FleetDrive{Addr: "gone:7070", Err: "connection refused"})
	fs := telemetry.BuildFleet(drives)

	if got := fs.Merged.Counters["drive.op.write.calls"]; got != sumWrites || got != nDrives*4 {
		t.Fatalf("merged write calls = %d, want per-drive sum %d = %d", got, sumWrites, nDrives*4)
	}

	// Per-tenant attribution: both partitions present, each billed
	// exactly the ops it issued, fleet-wide.
	if parts := telemetry.TenantParts(fs.Merged); len(parts) != 2 || parts[0] != 1 || parts[1] != 2 {
		t.Fatalf("tenant partitions = %v, want [1 2]", parts)
	}
	for part, count := range opsPerTenant {
		ts := telemetry.TenantSnapshot(fs.Merged, part)
		want := uint64(nDrives * count)
		if got := ts.Counters["drive.op.write.calls"]; got != want {
			t.Fatalf("tenant %d write calls = %d, want %d", part, got, want)
		}
		if got := ts.Counters["drive.op.read.calls"]; got != want {
			t.Fatalf("tenant %d read calls = %d, want %d", part, got, want)
		}
		if ts.Counters["drive.op.read.bytes_out"] != want*uint64(len(payload)) {
			t.Fatalf("tenant %d bytes_out = %d", part, ts.Counters["drive.op.read.bytes_out"])
		}
		if h := ts.Histograms["drive.op.write.svc_ns"]; h.Count != want {
			t.Fatalf("tenant %d write histogram count = %d, want %d", part, h.Count, want)
		}
	}

	// The merged read histogram's p99 exemplar names the trace the
	// traffic ran under, and that trace resolves to drive-side spans —
	// the fleet-table-to-`nasdctl trace` drilldown.
	h := fs.Merged.Histograms["drive.op.read.svc_ns"]
	ex := h.ExemplarNear(0.99)
	if ex == nil {
		t.Fatal("merged read histogram retained no exemplar")
	}
	if ex.TraceID != tid {
		t.Fatalf("exemplar trace = %d, want the root trace %d", ex.TraceID, tid)
	}
	var spans []telemetry.SpanRecord
	for _, n := range nodes {
		got, err := n.cli.ServerSpans(testCtx, ex.TraceID)
		if err != nil {
			t.Fatal(err)
		}
		spans = append(spans, got...)
	}
	if len(spans) == 0 {
		t.Fatalf("exemplar trace %d resolved to no drive-side spans", ex.TraceID)
	}

	// Event tails merge with sources stamped; every ring contributed.
	var sets [][]telemetry.Event
	var sources []string
	for _, d := range fs.Drives {
		if d.Err == "" {
			sets = append(sets, d.Events)
			sources = append(sources, d.Addr)
		}
	}
	merged := telemetry.MergeEvents(sets, sources)
	bySource := make(map[string]bool)
	for _, e := range merged {
		bySource[e.Source] = true
	}
	if len(bySource) != nDrives {
		t.Fatalf("merged events cover %d sources, want %d", len(bySource), nDrives)
	}

	// The rendered fleet table carries the drives, the total, the
	// tenant split, the down row, and the exemplar drilldown hint.
	var sb strings.Builder
	telemetry.WriteFleetTable(&sb, fs, nil)
	out := sb.String()
	for _, want := range []string{"TOTAL", "part.1", "part.2", "DOWN: connection refused", "nasdctl trace"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet table missing %q:\n%s", want, out)
		}
	}
}
