package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"nasd/internal/drive"
	"nasd/internal/rpc"
)

// ErrNoDialer is returned when a retry needs a fresh connection but the
// handle was built without WithDialer.
var ErrNoDialer = errors.New("client: connection lost and no dialer configured")

// RetryPolicy bounds how a Drive handle reissues failed requests. The
// policy is deadline-scoped: backoff never sleeps past the caller's
// context deadline, and a canceled context stops retrying immediately.
type RetryPolicy struct {
	// MaxAttempts is the total tries per request, including the first
	// (1 = never retry).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt (with jitter in [d/2, d)) up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the per-retry delay.
	MaxBackoff time.Duration
	// Budget is the per-connection retry token pool. Each retry spends
	// one token; each success refunds a tenth. A drive that fails
	// persistently exhausts the budget and errors surface fast instead
	// of amplifying load (the retry-budget idea from production RPC
	// systems, scaled to one client-drive pair).
	Budget int
	// AttemptTimeout, when > 0, bounds each individual attempt so a
	// lost request on a blackholed link is detected and reissued while
	// the caller's overall deadline still has room. 0 disables
	// per-attempt deadlines.
	AttemptTimeout time.Duration
}

// DefaultRetryPolicy returns the values WithRetry substitutes for zero
// fields (AttemptTimeout excepted: it defaults off).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  250 * time.Millisecond,
		Budget:      64,
	}
}

// WithRetry arms the handle with a retry policy. Zero-valued fields
// take DefaultRetryPolicy values. Without this option a Drive never
// retries at the request level (fragment-level pipelining retries
// still apply).
func WithRetry(p RetryPolicy) Option {
	return func(d *Drive) {
		def := DefaultRetryPolicy()
		if p.MaxAttempts <= 0 {
			p.MaxAttempts = def.MaxAttempts
		}
		if p.BaseBackoff <= 0 {
			p.BaseBackoff = def.BaseBackoff
		}
		if p.MaxBackoff <= 0 {
			p.MaxBackoff = def.MaxBackoff
		}
		if p.Budget <= 0 {
			p.Budget = def.Budget
		}
		d.retry = p
	}
}

// WithDialer supplies the reconnect path: when a retryable request
// fails on a dead connection, the handle dials a replacement and
// reissues over it (with a fresh nonce — drives reject replayed
// counters). Concurrent fragments that observe the same dead
// connection share one reconnect.
func WithDialer(dial func() (rpc.Conn, error)) Option {
	return func(d *Drive) { d.dial = dial }
}

// retryBudget is a token bucket in tenths: a retry costs 10 tenths, a
// success refunds 1, so sustained retries are capped near 10% of
// successful traffic once the initial pool drains.
type retryBudget struct {
	mu     sync.Mutex
	tenths int
	max    int
}

func newRetryBudget(tokens int) *retryBudget {
	if tokens < 1 {
		tokens = 1
	}
	return &retryBudget{tenths: tokens * 10, max: tokens * 10}
}

func (b *retryBudget) take() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tenths >= 10 {
		b.tenths -= 10
		return true
	}
	return false
}

func (b *retryBudget) refund() {
	b.mu.Lock()
	if b.tenths < b.max {
		b.tenths++
	}
	b.mu.Unlock()
}

// retryMode classifies one failure.
type retryMode int

const (
	retryNo        retryMode = iota // surface the error
	retrySame                       // reissue on the current connection
	retryReconnect                  // dial a fresh connection, then reissue
)

// idempotent reports whether op may be safely re-executed when the
// first attempt's fate is unknown (transport died or the attempt timed
// out after the request may have reached the drive). NASD reads and
// writes address absolute byte ranges under a capability, so repeating
// one is a no-op; allocation ops (create, version, bump) and removes
// change outcome on re-execution and must not be blind-retried.
func idempotent(op drive.Op) bool {
	switch op {
	case drive.OpReadObject, drive.OpWriteObject, drive.OpGetAttr, drive.OpSetAttr,
		drive.OpListObjects, drive.OpGetPartition, drive.OpFlush, drive.OpGetStats,
		drive.OpExecute, drive.OpSetKey:
		return true
	}
	return false
}

// retryMode classifies err from an attempt of op. ctx is the caller's
// context (not the per-attempt one).
func (d *Drive) retryMode(ctx context.Context, op drive.Op, err error) retryMode {
	if d.retry.MaxAttempts <= 1 {
		return retryNo
	}
	if ctx.Err() != nil {
		// The caller's deadline or cancellation: never retry past it.
		return retryNo
	}
	var re *RemoteError
	if errors.As(err, &re) {
		// The drive answered, so the connection is healthy and the
		// request demonstrably executed exactly once. Only generic
		// drive errors (momentary media or resource conditions) are
		// worth retrying; auth, replay, expiry, not-found, and quota
		// rejections are deterministic.
		if re.Status == rpc.StatusError {
			return retrySame
		}
		// Backpressure: the drive shed the request before executing
		// it, so even non-idempotent ops (create, remove, version)
		// reissue safely — there is no first execution to collide
		// with. do() paces the reissue by the reply's hint.
		if re.Status == rpc.StatusRetryLater {
			return retrySame
		}
		return retryNo
	}
	if errors.Is(err, context.DeadlineExceeded) {
		// The per-attempt timeout fired (the caller's context is
		// still live, checked above): the request or its reply was
		// lost. Reissuing is safe only for idempotent ops.
		if idempotent(op) {
			return retrySame
		}
		return retryNo
	}
	if errors.Is(err, context.Canceled) {
		return retryNo
	}
	// Transport failure. When the failure happened before the request
	// left the client (rpc.ErrNotSent), the drive demonstrably never
	// saw it and any op may be reissued; otherwise the attempt's fate
	// is unknown and only idempotent ops are safe.
	if d.dial != nil && (idempotent(op) || errors.Is(err, rpc.ErrNotSent)) {
		return retryReconnect
	}
	return retryNo
}

// backoff sleeps before the given retry attempt, scoped to ctx: it
// returns ctx.Err() instead of sleeping past the caller's deadline.
// With hint > 0 (a drive retry-after hint) the sleep is the hint plus
// up to 25% jitter — the drive knows when it will have room, and
// synchronized client herds re-arriving exactly at the hint would
// recreate the overload it shed to escape. With no hint the delay is
// the jittered exponential schedule.
func (d *Drive) backoff(ctx context.Context, attempt int, hint time.Duration) error {
	var delay time.Duration
	if hint > 0 {
		d.rngMu.Lock()
		delay = hint + time.Duration(d.rng.Int63n(int64(hint/4)+1))
		d.rngMu.Unlock()
	} else {
		delay = d.retry.BaseBackoff << uint(attempt)
		if delay <= 0 || delay > d.retry.MaxBackoff {
			delay = d.retry.MaxBackoff
		}
		// Full jitter over the upper half: [delay/2, delay).
		d.rngMu.Lock()
		delay = delay/2 + time.Duration(d.rng.Int63n(int64(delay/2)+1))
		d.rngMu.Unlock()
	}
	if dl, ok := ctx.Deadline(); ok {
		if remain := time.Until(dl); remain < delay {
			delay = remain // the deadline fires first; let it
		}
	}
	if delay <= 0 {
		return context.DeadlineExceeded
	}
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		if err := ctx.Err(); err != nil {
			return err
		}
		return nil
	}
}

// client returns the current RPC client and its generation. The
// generation lets a failed attempt name the connection it saw die, so
// reconnect() is idempotent across concurrent fragments.
func (d *Drive) client() (*rpc.Client, uint64) {
	d.connMu.Lock()
	defer d.connMu.Unlock()
	return d.cli, d.gen
}

// reconnect replaces the connection if gen still names the one the
// caller observed failing; when another fragment already reconnected,
// it returns immediately so a window's worth of failures costs one
// dial, not window dials.
func (d *Drive) reconnect(gen uint64) error {
	d.connMu.Lock()
	defer d.connMu.Unlock()
	if d.gen != gen {
		return nil
	}
	if d.dial == nil {
		return ErrNoDialer
	}
	conn, err := d.dial()
	if err != nil {
		return fmt.Errorf("client: reconnect: %w", err)
	}
	d.cli.Close()
	d.cli = rpc.NewClient(conn, rpc.WithClientMetrics(d.reg))
	d.gen++
	d.reconnects.Inc()
	return nil
}

// seedRNG builds the deterministic jitter source for a handle.
func seedRNG(driveID, clientID uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(clientID*0x9E3779B9 ^ driveID)))
}
