package client

import (
	"bytes"
	"errors"
	"testing"

	"nasd/internal/capability"
	"nasd/internal/crypt"
	"nasd/internal/object"
	"nasd/internal/rpc"
)

// TestNeedlePartitionOverWire drives the per-partition backend
// selection end to end: CreatePartitionBackend carries the choice over
// the admin RPC, GetPartition reports it back, and the full secure data
// path (capabilities included) works against the needle engine.
func TestNeedlePartitionOverWire(t *testing.T) {
	r := newRig(t, true)
	err := r.cli.CreatePartitionBackend(testCtx, crypt.KeyID{Type: crypt.MasterKey},
		r.master, 1, 0, object.BackendNeedle)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.fmKeys.AddPartition(1); err != nil {
		t.Fatal(err)
	}
	p, err := r.cli.GetPartition(testCtx, crypt.KeyID{Type: crypt.MasterKey}, r.master, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Backend != object.BackendNeedle {
		t.Fatalf("partition reports backend %v, want needle", p.Backend)
	}

	createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
	id, err := r.cli.Create(testCtx, &createCap, 1)
	if err != nil {
		t.Fatal(err)
	}
	rwCap := r.mint(t, 1, id, 1,
		capability.Read|capability.Write|capability.GetAttr|capability.SetAttr|capability.Version)
	data := bytes.Repeat([]byte("needle"), 1000)
	if err := r.cli.Write(testCtx, &rwCap, 1, id, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := r.cli.Read(testCtx, &rwCap, 1, id, 0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("needle partition round trip mismatch")
	}
	at, err := r.cli.GetAttr(testCtx, &rwCap, 1, id)
	if err != nil {
		t.Fatal(err)
	}
	if at.Size != uint64(len(data)) {
		t.Fatalf("size = %d, want %d", at.Size, len(data))
	}

	// Copy-on-write versioning is classic-only; the drive must map the
	// backend mismatch to a clean BadRequest, not a generic failure.
	var re *RemoteError
	if _, err := r.cli.VersionObject(testCtx, &rwCap, 1, id); !errors.As(err, &re) || re.Status != rpc.StatusBadRequest {
		t.Fatalf("VersionObject on needle partition: %v, want StatusBadRequest", err)
	}

	// Capability revocation by version bump works on either backend.
	if _, err := r.cli.BumpVersion(testCtx, &rwCap, 1, id); err != nil {
		t.Fatal(err)
	}
	if _, err := r.cli.Read(testCtx, &rwCap, 1, id, 0, 4); !errors.Is(err, ErrAuth) {
		t.Fatalf("read with revoked capability on needle partition: %v", err)
	}
}
