package client

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/rpc"
)

// TestConcurrentReadsAliasSafety is the pooled-frame lifecycle stress
// test, meant to run under -race (scripts/check.sh runs the whole
// suite that way). Several goroutines hammer overlapping pipelined and
// plain reads of distinct per-object patterns over a real TCP
// connection — so receive frames, reply headers, cache blocks, and
// read buffers are constantly recycled through the buffer pool — while
// every reader asserts its payload is exactly its object's pattern. A
// buffer released too early (still referenced by another request) or
// recycled across requests shows up as a pattern mismatch or a race
// report.
func TestConcurrentReadsAliasSafety(t *testing.T) {
	master := crypt.NewRandomKey()
	// Small cache so reads constantly evict and refill pooled entries.
	dev := blockdev.NewMemDisk(4096, 1<<14)
	drv, err := drive.NewFormat(dev, drive.Config{ID: 11, Master: master, Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	l, err := rpc.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := drv.Serve(l)
	defer srv.Close()

	const (
		part    = 1
		objSize = 1 << 20
		readers = 4
		rounds  = 8
	)
	fm := crypt.NewHierarchy(master)
	if err := fm.AddPartition(part); err != nil {
		t.Fatal(err)
	}

	setupConn, err := rpc.DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	setup := New(setupConn, 11, 1, WithSecurity(true))
	defer setup.Close()
	ctx := context.Background()
	if err := setup.CreatePartition(ctx, crypt.KeyID{Type: crypt.MasterKey}, master, part, 0); err != nil {
		t.Fatal(err)
	}
	kid, key, _ := fm.CurrentWorkingKey(part)
	mint := func(obj, ver uint64, rights capability.Rights) capability.Capability {
		return capability.Mint(capability.Public{
			DriveID: 11, Partition: part, Object: obj, ObjVer: ver, Rights: rights,
			Expiry: time.Now().Add(time.Hour).UnixNano(), Key: kid,
		}, key)
	}

	// One object per reader, each with a distinct byte pattern.
	pattern := func(id int) []byte {
		p := make([]byte, objSize)
		for i := range p {
			p[i] = byte(id*131 + i*31)
		}
		return p
	}
	cc := mint(0, 0, capability.CreateObj)
	objs := make([]uint64, readers)
	for i := 0; i < readers; i++ {
		obj, err := setup.Create(ctx, &cc, part)
		if err != nil {
			t.Fatal(err)
		}
		wc := mint(obj, 1, capability.Write)
		if err := setup.WritePipelined(ctx, &wc, part, obj, 0, pattern(i)); err != nil {
			t.Fatal(err)
		}
		objs[i] = obj
	}

	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := rpc.DialTCP(l.Addr())
			if err != nil {
				errs <- err
				return
			}
			cli := New(conn, 11, uint64(100+id), WithSecurity(true), WithWindow(8))
			defer cli.Close()
			rc := mint(objs[id], 1, capability.Read)
			want := pattern(id)
			dst := make([]byte, objSize)
			for r := 0; r < rounds; r++ {
				// Alternate the client's bulk paths; both must survive
				// concurrent frame recycling.
				if r%2 == 0 {
					got, err := cli.ReadPipelined(ctx, &rc, part, objs[id], 0, objSize)
					if err != nil {
						errs <- fmt.Errorf("reader %d round %d: %v", id, r, err)
						return
					}
					if !bytes.Equal(got, want) {
						errs <- fmt.Errorf("reader %d round %d: pipelined payload corrupted", id, r)
						return
					}
				} else {
					n, err := cli.ReadInto(ctx, &rc, part, objs[id], 0, dst)
					if err != nil {
						errs <- fmt.Errorf("reader %d round %d: %v", id, r, err)
						return
					}
					if n != objSize || !bytes.Equal(dst[:n], want) {
						errs <- fmt.Errorf("reader %d round %d: ReadInto payload corrupted (n=%d)", id, r, n)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
