package client

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"nasd/internal/capability"
)

// TestConcurrentClientsOneDrive hammers a single secure drive with
// several concurrent clients doing mixed operations (create, write,
// read, attr, snapshot, remove). Run under -race this exercises the
// locking of the object store, cache, layout, and RPC mux together.
func TestConcurrentClientsOneDrive(t *testing.T) {
	r := newRig(t, true)
	r.mkpart(t, 1, 0)

	const nWorkers = 6
	const opsPerWorker = 30
	var wg sync.WaitGroup
	errs := make([]error, nWorkers)
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = func() error {
				// Each worker gets its own connection (its own nonce
				// counter) but shares the drive.
				conn, err := r.listener.Dial()
				if err != nil {
					return err
				}
				cli := New(conn, 7, uint64(3000+w))
				defer cli.Close()

				createCap := r.mint(t, 1, 0, 0, capability.CreateObj)
				payload := bytes.Repeat([]byte{byte(w)}, 8192)
				for i := 0; i < opsPerWorker; i++ {
					obj, err := cli.Create(testCtx, &createCap, 1)
					if err != nil {
						return fmt.Errorf("create: %w", err)
					}
					rw := r.mint(t, 1, obj, 1, capability.Read|capability.Write|capability.GetAttr|capability.Version|capability.Remove)
					if err := cli.Write(testCtx, &rw, 1, obj, 0, payload); err != nil {
						return fmt.Errorf("write: %w", err)
					}
					got, err := cli.Read(testCtx, &rw, 1, obj, 0, len(payload))
					if err != nil {
						return fmt.Errorf("read: %w", err)
					}
					if !bytes.Equal(got, payload) {
						return fmt.Errorf("worker %d object %d corrupted", w, obj)
					}
					if i%5 == 0 {
						snap, err := cli.VersionObject(testCtx, &rw, 1, obj)
						if err != nil {
							return fmt.Errorf("snapshot: %w", err)
						}
						sc := r.mint(t, 1, snap, 1, capability.Read|capability.Remove)
						sg, err := cli.Read(testCtx, &sc, 1, snap, 0, 16)
						if err != nil || !bytes.Equal(sg, payload[:16]) {
							return fmt.Errorf("snapshot read: %w", err)
						}
						if err := cli.Remove(testCtx, &sc, 1, snap); err != nil {
							return fmt.Errorf("snapshot remove: %w", err)
						}
					}
					if i%3 == 0 {
						if err := cli.Remove(testCtx, &rw, 1, obj); err != nil {
							return fmt.Errorf("remove: %w", err)
						}
					}
				}
				return nil
			}()
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", w, err)
		}
	}
	// The partition is consistent afterwards: usage accounting matches
	// a fresh scan of the surviving objects.
	p, err := r.drv.Store().GetPartition(1)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := r.drv.Store().List(1)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(ids)) != p.ObjectCount {
		t.Fatalf("object count %d != listed %d", p.ObjectCount, len(ids))
	}
	if p.UsedBlocks < 0 {
		t.Fatalf("negative usage: %d", p.UsedBlocks)
	}
}
