package client

import (
	"bytes"
	"testing"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// TestSpanContextRoundTrip checks span propagation across a real TCP
// connection: the client's span context travels in the request header
// and the drive-side span comes back (via the stats RPC and direct
// inspection) as a child of the client span that issued the call, with
// Table 1 phase children beneath it.
func TestSpanContextRoundTrip(t *testing.T) {
	master := crypt.NewRandomKey()
	dev := blockdev.NewMemDisk(4096, 8192)
	driveSpans := telemetry.NewSpanLog(256)
	drv, err := drive.NewFormat(dev, drive.Config{ID: 7, Master: master, Secure: true, Spans: driveSpans})
	if err != nil {
		t.Fatal(err)
	}
	l, err := rpc.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := drv.Serve(l)
	t.Cleanup(srv.Close)
	conn, err := rpc.DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	clientSpans := telemetry.NewSpanLog(256)
	cli := New(conn, 7, 1001, WithSecurity(true), WithSpans(clientSpans))
	t.Cleanup(func() { cli.Close() })

	fmKeys := crypt.NewHierarchy(master)
	if err := cli.CreatePartition(testCtx, crypt.KeyID{Type: crypt.MasterKey}, master, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := fmKeys.AddPartition(1); err != nil {
		t.Fatal(err)
	}
	mint := func(obj, ver uint64, rights capability.Rights) capability.Capability {
		kid, key, err := fmKeys.CurrentWorkingKey(1)
		if err != nil {
			t.Fatal(err)
		}
		return capability.Mint(capability.Public{
			DriveID: 7, Partition: 1, Object: obj, ObjVer: ver,
			Rights: rights, Expiry: time.Now().Add(time.Hour).UnixNano(), Key: kid,
		}, key)
	}

	cc := mint(0, 0, capability.CreateObj)
	obj, err := cli.Create(testCtx, &cc, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("span"), 1024)
	wc := mint(obj, 1, capability.Write)
	if err := cli.Write(testCtx, &wc, 1, obj, 0, data); err != nil {
		t.Fatal(err)
	}

	// The traced operation: a read under an explicit root span.
	ctx, root := clientSpans.StartSpan(testCtx, "test.root")
	rc := mint(obj, 1, capability.Read)
	got, err := cli.Read(ctx, &rc, 1, obj, 0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read mismatch")
	}
	root.End()
	tid := root.Context().TraceID

	// Client side: the read op span is a child of the test root.
	var readSpan telemetry.SpanRecord
	for _, r := range clientSpans.ByTrace(tid) {
		if r.Name == "client.read" {
			readSpan = r
		}
	}
	if readSpan.SpanID == 0 {
		t.Fatalf("no client.read span in trace %d: %+v", tid, clientSpans.ByTrace(tid))
	}
	if readSpan.Parent != root.Context().SpanID {
		t.Fatalf("client.read parent %d, want root span %d", readSpan.Parent, root.Context().SpanID)
	}

	// Drive side: the handler span's parent is the client span ID that
	// crossed the wire, and the phase children hang off the handler.
	serverSpans, err := cli.ServerSpans(testCtx, tid)
	if err != nil {
		t.Fatal(err)
	}
	var driveSpan telemetry.SpanRecord
	for _, r := range serverSpans {
		if r.Name == "drive.read" {
			driveSpan = r
		}
	}
	if driveSpan.SpanID == 0 {
		t.Fatalf("no drive.read span came back over the stats RPC: %+v", serverSpans)
	}
	if driveSpan.Parent != readSpan.SpanID {
		t.Fatalf("drive.read parent %d, want client.read span %d", driveSpan.Parent, readSpan.SpanID)
	}
	var phaseSum int64
	phases := map[string]bool{}
	for _, r := range serverSpans {
		switch r.Name {
		case "digest", "object-system", "media":
			if r.Parent != driveSpan.SpanID {
				t.Fatalf("phase %q parent %d, want drive span %d", r.Name, r.Parent, driveSpan.SpanID)
			}
			phases[r.Name] = true
			phaseSum += int64(r.Dur())
		}
	}
	if !phases["digest"] || !phases["object-system"] {
		t.Fatalf("missing phase spans (got %v) in %+v", phases, serverSpans)
	}
	if dur := int64(driveSpan.Dur()); phaseSum <= 0 || phaseSum > dur {
		t.Fatalf("phase durations sum %d outside (0, %d]", phaseSum, dur)
	}
}
