package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"sync/atomic"
)

// Request IDs give every client-initiated operation an identity that
// survives the trip across the RPC plane: the client stamps the ID into
// the wire request (rpc.Request.Trace), the drive records it in its
// trace log, and a multi-drive operation (a cheops striped read) shares
// one ID across every component request it fans out. Like span IDs,
// they are a counter salted with a random per-process high word: a
// drive outlives many short-lived clients (think repeated nasdctl
// invocations), and since request IDs double as trace IDs, two clients
// both counting from 1 would interleave unrelated operations into one
// trace on the drive.

type requestIDKey struct{}

var requestIDSalt = func() uint64 {
	var b [4]byte
	_, _ = rand.Read(b[:])
	return uint64(binary.LittleEndian.Uint32(b[:])) << 32
}()

var lastRequestID atomic.Uint64

// NextRequestID allocates a fresh request ID, disjoint across processes
// (never 0; 0 on the wire means "untraced").
func NextRequestID() uint64 {
	return requestIDSalt | (lastRequestID.Add(1) & 0xffffffff)
}

// WithRequestID returns ctx carrying a fresh request ID, and the ID.
// If ctx already carries one it is kept, so the outermost caller wins
// and fan-out layers inherit.
func WithRequestID(ctx context.Context) (context.Context, uint64) {
	if id, ok := RequestIDFrom(ctx); ok {
		return ctx, id
	}
	id := NextRequestID()
	return context.WithValue(ctx, requestIDKey{}, id), id
}

// WithExplicitRequestID returns ctx carrying the given ID, replacing
// any existing one (used by servers resuming a trace from the wire).
func WithExplicitRequestID(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom extracts the request ID from ctx.
func RequestIDFrom(ctx context.Context) (uint64, bool) {
	id, ok := ctx.Value(requestIDKey{}).(uint64)
	return id, ok && id != 0
}
