package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// This file renders snapshots for humans. Two views matter: the flat
// dump of every metric (nasdctl stats), and the per-operation cost
// table keyed on the drive's "drive.op.<name>.<metric>" family, which
// reproduces the shape of the paper's Table 1 — one row per NASD
// operation, service time split into digest, object-system, and media
// components.

// WriteText dumps every metric in the snapshot, sorted by name.
// Histograms print count/mean/p50/p95/max; "_ns" metrics render as
// durations.
func WriteText(w io.Writer, s Snapshot) {
	for _, name := range s.Names() {
		if v, ok := s.Counters[name]; ok {
			fmt.Fprintf(w, "%-44s %s\n", name, formatValue(name, int64(v)))
			continue
		}
		if v, ok := s.Gauges[name]; ok {
			fmt.Fprintf(w, "%-44s %s\n", name, formatValue(name, v))
			continue
		}
		if h, ok := s.Histograms[name]; ok {
			fmt.Fprintf(w, "%-44s n=%d mean=%s p50=%s p95=%s max=%s\n",
				name, h.Count,
				formatValue(name, h.Mean()),
				formatValue(name, h.Quantile(0.50)),
				formatValue(name, h.Quantile(0.95)),
				formatValue(name, h.Max))
		}
	}
}

// formatValue renders nanosecond-named metrics as durations and
// everything else as plain integers.
func formatValue(name string, v int64) string {
	if strings.HasSuffix(name, "_ns") {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%d", v)
}

// OpRow is one operation's aggregated cost, extracted from a snapshot's
// "<prefix>.<op>.<metric>" family.
type OpRow struct {
	Op       string
	Calls    uint64
	Errors   uint64
	BytesIn  uint64
	BytesOut uint64
	Svc      HistogramSnapshot // service-time histogram (ns)
	DigestNS uint64            // cumulative phase time
	ObjectNS uint64
	MediaNS  uint64
}

// OpRows extracts the per-operation table from a snapshot. prefix is
// the family root, e.g. "drive.op". Rows come back sorted by call
// count, busiest first.
func OpRows(s Snapshot, prefix string) []OpRow {
	rows := make(map[string]*OpRow)
	get := func(name string) (*OpRow, string, bool) {
		rest, ok := strings.CutPrefix(name, prefix+".")
		if !ok {
			return nil, "", false
		}
		op, metric, ok := strings.Cut(rest, ".")
		if !ok {
			return nil, "", false
		}
		r := rows[op]
		if r == nil {
			r = &OpRow{Op: op}
			rows[op] = r
		}
		return r, metric, true
	}
	for name, v := range s.Counters {
		r, metric, ok := get(name)
		if !ok {
			continue
		}
		switch metric {
		case "calls":
			r.Calls = v
		case "errors":
			r.Errors = v
		case "bytes_in":
			r.BytesIn = v
		case "bytes_out":
			r.BytesOut = v
		case "digest_ns":
			r.DigestNS = v
		case "object_ns":
			r.ObjectNS = v
		case "media_ns":
			r.MediaNS = v
		}
	}
	for name, h := range s.Histograms {
		if r, metric, ok := get(name); ok && metric == "svc_ns" {
			r.Svc = h
		}
	}
	out := make([]OpRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Calls != out[j].Calls {
			return out[i].Calls > out[j].Calls
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// WriteOpTable renders the per-operation cost breakdown: one row per
// op with call count, mean and tail service time, and the share of
// service time spent in each Table 1 component (digest verification,
// object system, media).
func WriteOpTable(w io.Writer, s Snapshot, prefix string) {
	rows := OpRows(s, prefix)
	if len(rows) == 0 {
		fmt.Fprintf(w, "(no %s.* metrics in snapshot)\n", prefix)
		return
	}
	fmt.Fprintf(w, "%-10s %8s %7s %10s %10s %10s %8s %8s %8s %10s\n",
		"op", "calls", "errors", "mean", "p95", "max", "digest%", "object%", "media%", "MB moved")
	for _, r := range rows {
		if r.Calls == 0 {
			continue
		}
		total := float64(r.DigestNS + r.ObjectNS + r.MediaNS)
		pct := func(v uint64) string {
			if total == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f", 100*float64(v)/total)
		}
		mb := float64(r.BytesIn+r.BytesOut) / (1 << 20)
		fmt.Fprintf(w, "%-10s %8d %7d %10s %10s %10s %8s %8s %8s %10.2f\n",
			r.Op, r.Calls, r.Errors,
			time.Duration(r.Svc.Mean()).Round(time.Microsecond),
			time.Duration(r.Svc.Quantile(0.95)).Round(time.Microsecond),
			time.Duration(r.Svc.Max).Round(time.Microsecond),
			pct(r.DigestNS), pct(r.ObjectNS), pct(r.MediaNS), mb)
	}
}
