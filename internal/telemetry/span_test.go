package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanHierarchy(t *testing.T) {
	l := NewSpanLog(64)
	ctx, root := l.StartSpan(context.Background(), "root")
	if root == nil {
		t.Fatal("root span is nil")
	}
	rc := root.Context()
	if rc.TraceID == 0 || rc.SpanID == 0 {
		t.Fatalf("root context has zero IDs: %+v", rc)
	}
	_, child := l.StartSpan(ctx, "child")
	cc := child.Context()
	if cc.TraceID != rc.TraceID {
		t.Fatalf("child trace %d != root trace %d", cc.TraceID, rc.TraceID)
	}
	child.Annotate("k", "v")
	child.End()
	root.End()

	spans := l.ByTrace(rc.TraceID)
	if len(spans) != 2 {
		t.Fatalf("ByTrace returned %d spans, want 2", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, r := range spans {
		byName[r.Name] = r
	}
	if byName["root"].Parent != 0 {
		t.Fatalf("root has parent %d", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].SpanID {
		t.Fatalf("child parent %d != root span %d", byName["child"].Parent, byName["root"].SpanID)
	}
	if got := byName["child"].Annotations; len(got) != 1 || got[0].Key != "k" || got[0].Value != "v" {
		t.Fatalf("child annotations = %+v", got)
	}
}

func TestSpanRootReusesRequestID(t *testing.T) {
	l := NewSpanLog(8)
	ctx, reqID := WithRequestID(context.Background())
	_, sp := l.StartSpan(ctx, "op")
	if sc := sp.Context(); sc.TraceID != reqID {
		t.Fatalf("trace ID %d != request ID %d", sc.TraceID, reqID)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var l *SpanLog
	ctx, sp := l.StartSpan(context.Background(), "x")
	if sp != nil {
		t.Fatal("nil log returned non-nil span")
	}
	if _, ok := SpanContextFrom(ctx); ok {
		t.Fatal("nil log attached a span context")
	}
	sp.Annotate("a", "b") // must not panic
	sp.End()
	if s := l.StartRemote(1, 2, "y"); s != nil {
		t.Fatal("nil log StartRemote returned non-nil span")
	}
}

func TestStartRemoteUntraced(t *testing.T) {
	l := NewSpanLog(8)
	if sp := l.StartRemote(0, 7, "drive.read"); sp != nil {
		t.Fatal("zero trace ID must yield a nil span")
	}
	sp := l.StartRemote(42, 7, "drive.read")
	sp.End()
	spans := l.ByTrace(42)
	if len(spans) != 1 || spans[0].Parent != 7 {
		t.Fatalf("remote span = %+v", spans)
	}
}

func TestSpanLogRingBounds(t *testing.T) {
	l := NewSpanLog(4)
	for i := 0; i < 10; i++ {
		l.Emit(SpanRecord{TraceID: uint64(i + 1), SpanID: NextSpanID(), Name: "s"})
	}
	recent := l.Recent(100)
	if len(recent) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(recent))
	}
	// Oldest first: traces 7..10 survive.
	for i, r := range recent {
		if want := uint64(7 + i); r.TraceID != want {
			t.Fatalf("recent[%d].TraceID = %d, want %d", i, r.TraceID, want)
		}
	}
}

func TestSlowOpRetention(t *testing.T) {
	l := NewSpanLog(4)
	l.SetSlowThreshold(time.Millisecond)
	// A slow trace: root span over the threshold plus one child.
	l.Emit(SpanRecord{TraceID: 9, SpanID: 100, Parent: 1, Name: "child", StartNS: 0, EndNS: 10})
	l.Emit(SpanRecord{TraceID: 9, SpanID: 1, Name: "root", StartNS: 0, EndNS: int64(2 * time.Millisecond)})
	// Wrap the ring with unrelated traffic.
	for i := 0; i < 16; i++ {
		l.Emit(SpanRecord{TraceID: 1000 + uint64(i), SpanID: NextSpanID(), Name: "noise"})
	}
	spans := l.ByTrace(9)
	if len(spans) != 2 {
		t.Fatalf("retained %d spans for slow trace, want 2 (ring wrapped)", len(spans))
	}
	// A fast root span must not be retained once the ring wraps.
	l2 := NewSpanLog(4)
	l2.SetSlowThreshold(time.Millisecond)
	l2.Emit(SpanRecord{TraceID: 5, SpanID: 2, Name: "root", StartNS: 0, EndNS: 10})
	for i := 0; i < 16; i++ {
		l2.Emit(SpanRecord{TraceID: 2000 + uint64(i), SpanID: NextSpanID(), Name: "noise"})
	}
	if got := l2.ByTrace(5); len(got) != 0 {
		t.Fatalf("fast trace survived ring wrap: %+v", got)
	}
}

func TestSlowRetentionEviction(t *testing.T) {
	l := NewSpanLog(8)
	l.SetSlowThreshold(time.Nanosecond)
	for i := 0; i < retainedTraces+5; i++ {
		l.Emit(SpanRecord{TraceID: uint64(i + 1), SpanID: NextSpanID(), Name: "root", StartNS: 0, EndNS: 100})
	}
	l.mu.Lock()
	n := len(l.retained)
	l.mu.Unlock()
	if n > retainedTraces {
		t.Fatalf("retained table grew to %d, cap %d", n, retainedTraces)
	}
}

func TestNextSpanIDUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := NextSpanID()
		if id == 0 {
			t.Fatal("zero span ID")
		}
		if seen[id] {
			t.Fatalf("duplicate span ID %d", id)
		}
		seen[id] = true
	}
}

func TestSpanLogConcurrency(t *testing.T) {
	l := NewSpanLog(64)
	l.SetSlowThreshold(time.Nanosecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, sp := l.StartSpan(context.Background(), "op")
				_, c := l.StartSpan(ctx, "child")
				c.End()
				sp.End()
				l.Recent(16)
				l.ByTrace(sp.Context().TraceID)
			}
		}(g)
	}
	wg.Wait()
}

func TestMergeSpansDedup(t *testing.T) {
	a := []SpanRecord{{TraceID: 1, SpanID: 10}, {TraceID: 1, SpanID: 11}}
	b := []SpanRecord{{TraceID: 1, SpanID: 11}, {TraceID: 1, SpanID: 12}}
	got := MergeSpans(a, b)
	if len(got) != 3 {
		t.Fatalf("merged %d spans, want 3", len(got))
	}
}

func TestWriteTimeline(t *testing.T) {
	spans := []SpanRecord{
		{TraceID: 7, SpanID: 1, Name: "client.read", StartNS: 0, EndNS: 1000000},
		{TraceID: 7, SpanID: 2, Parent: 1, Name: "cheops.read.leg", StartNS: 100000, EndNS: 200000},
		{TraceID: 7, SpanID: 3, Parent: 1, Name: "cheops.read.leg", StartNS: 100000, EndNS: 210000},
		{TraceID: 7, SpanID: 4, Parent: 1, Name: "cheops.read.leg", StartNS: 100000, EndNS: 900000},
		// A long sibling of a different name: never compared to the legs.
		{TraceID: 7, SpanID: 6, Parent: 1, Name: "digest", StartNS: 0, EndNS: 950000},
		{TraceID: 8, SpanID: 5, Name: "other-trace", StartNS: 0, EndNS: 1},
	}
	var sb strings.Builder
	WriteTimeline(&sb, 7, spans)
	out := sb.String()
	if !strings.Contains(out, "trace 7: 5 spans") {
		t.Fatalf("missing header:\n%s", out)
	}
	if strings.Contains(out, "other-trace") {
		t.Fatalf("timeline leaked another trace:\n%s", out)
	}
	if !strings.Contains(out, "straggler") {
		t.Fatalf("slow sibling not flagged:\n%s", out)
	}
	// The straggler flag must be on the 900us leg line only: not the
	// fast legs, and not the long digest span (a different name, so a
	// group of one — nothing to compare against).
	flagged := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "straggler") {
			continue
		}
		flagged++
		if !strings.Contains(line, "800µs") {
			t.Fatalf("straggler flagged on wrong line: %q", line)
		}
	}
	if flagged != 1 {
		t.Fatalf("%d straggler flags, want exactly 1:\n%s", flagged, out)
	}
}

func TestWriteTimelineOrphanPromotion(t *testing.T) {
	spans := []SpanRecord{
		// Parent 99 is missing from the set (wrapped ring): still renders.
		{TraceID: 3, SpanID: 2, Parent: 99, Name: "drive.read", StartNS: 5, EndNS: 10},
	}
	var sb strings.Builder
	WriteTimeline(&sb, 3, spans)
	if !strings.Contains(sb.String(), "drive.read") {
		t.Fatalf("orphan span not rendered:\n%s", sb.String())
	}
}

func TestTraceLogConcurrentAddRecent(t *testing.T) {
	log := NewTraceLog(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				log.Add(TraceEvent{RequestID: uint64(g*1000 + i), Op: "read"})
				log.Recent(8)
			}
		}(g)
	}
	wg.Wait()
}

func TestTraceHandlerBoundsResponse(t *testing.T) {
	log := NewTraceLog(4096)
	for i := 0; i < 4096; i++ {
		log.Add(TraceEvent{RequestID: uint64(i)})
	}
	spans := NewSpanLog(8)
	srv := httptest.NewServer(TraceHandler(log, spans))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/trace?n=1000000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var evs []TraceEvent
	if err := json.NewDecoder(resp.Body).Decode(&evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) > MaxTraceResponse {
		t.Fatalf("handler returned %d events, cap is %d", len(evs), MaxTraceResponse)
	}
}

func TestTraceHandlerSpanMode(t *testing.T) {
	log := NewTraceLog(4)
	spans := NewSpanLog(8)
	_, sp := spans.StartSpan(context.Background(), "op")
	tid := sp.Context().TraceID
	sp.End()
	srv := httptest.NewServer(TraceHandler(log, spans))
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("%s/trace?trace=%d", srv.URL, tid))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recs []SpanRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "op" {
		t.Fatalf("span mode returned %+v", recs)
	}
}
