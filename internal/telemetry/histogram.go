package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every histogram. Bucket 0
// holds values <= 1; bucket i holds values in (2^(i-1), 2^i]; the last
// bucket additionally absorbs everything larger. With nanosecond
// observations the layout spans 1 ns to ~39 hours, which covers every
// latency this system can produce, and the fixed shape is what makes
// snapshots from different drives mergeable.
const NumBuckets = 48

// Histogram is a lock-free fixed-bucket histogram of int64 values
// (by convention nanoseconds; cheops also uses one for stripe fan-out
// widths). The zero value is ready to use.
//
// Each bucket additionally retains an exemplar: the most recent traced
// observation that landed in it. Exemplars are what link a histogram's
// tail back to evidence — the p99 bucket's exemplar names a concrete
// trace ID whose span timeline shows where that latency went.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0; 0 sentinel handled via CAS from minUnset
	max     atomic.Int64
	minInit atomic.Bool
	buckets [NumBuckets]atomic.Uint64
	ex      [NumBuckets]atomic.Pointer[Exemplar]
}

// Exemplar is one concrete traced observation retained for a bucket.
type Exemplar struct {
	Bucket   int    `json:"bucket"`
	Value    int64  `json:"value"`
	TraceID  uint64 `json:"trace_id"`
	UnixNano int64  `json:"unix_ns"`
}

// bucketIndex returns the bucket for value v.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	// Smallest i with 2^i >= v, i.e. ceil(log2(v)).
	i := bits.Len64(uint64(v - 1))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketBound returns the inclusive upper bound of bucket i.
func BucketBound(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1 << uint(i)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	if h.minInit.CompareAndSwap(false, true) {
		h.min.Store(v)
		h.max.Store(v)
	} else {
		for {
			cur := h.min.Load()
			if v >= cur || h.min.CompareAndSwap(cur, v) {
				break
			}
		}
		for {
			cur := h.max.Load()
			if v <= cur || h.max.CompareAndSwap(cur, v) {
				break
			}
		}
	}
}

// ObserveTrace records one value and, when the observation belongs to
// a traced request (traceID != 0), retains it as its bucket's
// exemplar. Untraced observations count normally but never displace an
// exemplar.
func (h *Histogram) ObserveTrace(v int64, traceID uint64) {
	h.Observe(v)
	if traceID == 0 {
		return
	}
	i := bucketIndex(v)
	h.ex[i].Store(&Exemplar{Bucket: i, Value: v, TraceID: traceID, UnixNano: time.Now().UnixNano()})
}

// Sum returns the cumulative sum of observed values (one atomic read).
// The drive reads lock-meter wait histograms this way to annotate a
// request's span with the lock-wait delta it observed.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

// Snapshot copies the histogram's state. The copy is not atomic across
// fields: counts and sums observed concurrently may be off by the
// in-flight observations, which is acceptable for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	s.Buckets = make([]uint64, NumBuckets)
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	for i := range h.ex {
		if e := h.ex[i].Load(); e != nil {
			s.Exemplars = append(s.Exemplars, *e)
		}
	}
	return s
}

// HistogramSnapshot is the serializable form of a Histogram. Exemplars
// holds at most one entry per occupied bucket, in ascending bucket
// order.
type HistogramSnapshot struct {
	Count     uint64     `json:"count"`
	Sum       int64      `json:"sum"`
	Min       int64      `json:"min"`
	Max       int64      `json:"max"`
	Buckets   []uint64   `json:"buckets"`
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Mean returns the average observed value (0 when empty).
func (s *HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / int64(s.Count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by locating the
// bucket holding the q-th sample and interpolating linearly within it.
// The true value is within a factor of two (one bucket) of the
// estimate, bounded by the recorded min and max.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo := int64(0)
			if i > 0 {
				lo = BucketBound(i - 1)
			}
			hi := BucketBound(i)
			frac := (rank - cum) / float64(n)
			v := lo + int64(frac*float64(hi-lo))
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v
		}
		cum = next
	}
	return s.Max
}

// Merge folds other into s bucket-by-bucket. Exemplars merge per
// bucket, most recent observation winning, so a fleet-merged histogram
// still names a live trace for each occupied bucket.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	if other.Count == 0 {
		return
	}
	if s.Count == 0 {
		s.Min = other.Min
		s.Max = other.Max
	} else {
		if other.Min < s.Min {
			s.Min = other.Min
		}
		if other.Max > s.Max {
			s.Max = other.Max
		}
	}
	s.Count += other.Count
	s.Sum += other.Sum
	if s.Buckets == nil {
		s.Buckets = make([]uint64, NumBuckets)
	}
	for i := 0; i < len(other.Buckets) && i < len(s.Buckets); i++ {
		s.Buckets[i] += other.Buckets[i]
	}
	if len(other.Exemplars) == 0 {
		return
	}
	byBucket := make(map[int]Exemplar, len(s.Exemplars)+len(other.Exemplars))
	for _, e := range s.Exemplars {
		byBucket[e.Bucket] = e
	}
	for _, e := range other.Exemplars {
		if cur, ok := byBucket[e.Bucket]; !ok || e.UnixNano > cur.UnixNano {
			byBucket[e.Bucket] = e
		}
	}
	s.Exemplars = s.Exemplars[:0]
	for i := 0; i < NumBuckets; i++ {
		if e, ok := byBucket[i]; ok {
			s.Exemplars = append(s.Exemplars, e)
		}
	}
}

// ExemplarNear returns the retained exemplar closest to the q-th
// quantile, preferring the exemplar of the quantile's bucket or any
// higher one (a tail quantile should surface the *slow* evidence).
// Returns nil when the histogram has no exemplars.
func (s *HistogramSnapshot) ExemplarNear(q float64) *Exemplar {
	if len(s.Exemplars) == 0 {
		return nil
	}
	target := bucketIndex(s.Quantile(q))
	best := -1
	for i, e := range s.Exemplars { // ascending bucket order
		if e.Bucket >= target {
			best = i
			break
		}
	}
	if best < 0 {
		best = len(s.Exemplars) - 1 // all below target: nearest from below
	}
	e := s.Exemplars[best]
	return &e
}
