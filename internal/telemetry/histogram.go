package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every histogram. Bucket 0
// holds values <= 1; bucket i holds values in (2^(i-1), 2^i]; the last
// bucket additionally absorbs everything larger. With nanosecond
// observations the layout spans 1 ns to ~39 hours, which covers every
// latency this system can produce, and the fixed shape is what makes
// snapshots from different drives mergeable.
const NumBuckets = 48

// Histogram is a lock-free fixed-bucket histogram of int64 values
// (by convention nanoseconds; cheops also uses one for stripe fan-out
// widths). The zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0; 0 sentinel handled via CAS from minUnset
	max     atomic.Int64
	minInit atomic.Bool
	buckets [NumBuckets]atomic.Uint64
}

// bucketIndex returns the bucket for value v.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	// Smallest i with 2^i >= v, i.e. ceil(log2(v)).
	i := bits.Len64(uint64(v - 1))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketBound returns the inclusive upper bound of bucket i.
func BucketBound(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1 << uint(i)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	if h.minInit.CompareAndSwap(false, true) {
		h.min.Store(v)
		h.max.Store(v)
	} else {
		for {
			cur := h.min.Load()
			if v >= cur || h.min.CompareAndSwap(cur, v) {
				break
			}
		}
		for {
			cur := h.max.Load()
			if v <= cur || h.max.CompareAndSwap(cur, v) {
				break
			}
		}
	}
}

// Sum returns the cumulative sum of observed values (one atomic read).
// The drive reads lock-meter wait histograms this way to annotate a
// request's span with the lock-wait delta it observed.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

// Snapshot copies the histogram's state. The copy is not atomic across
// fields: counts and sums observed concurrently may be off by the
// in-flight observations, which is acceptable for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	s.Buckets = make([]uint64, NumBuckets)
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is the serializable form of a Histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Buckets []uint64 `json:"buckets"`
}

// Mean returns the average observed value (0 when empty).
func (s *HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / int64(s.Count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by locating the
// bucket holding the q-th sample and interpolating linearly within it.
// The true value is within a factor of two (one bucket) of the
// estimate, bounded by the recorded min and max.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo := int64(0)
			if i > 0 {
				lo = BucketBound(i - 1)
			}
			hi := BucketBound(i)
			frac := (rank - cum) / float64(n)
			v := lo + int64(frac*float64(hi-lo))
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v
		}
		cum = next
	}
	return s.Max
}

// Merge folds other into s bucket-by-bucket.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	if other.Count == 0 {
		return
	}
	if s.Count == 0 {
		s.Min = other.Min
		s.Max = other.Max
	} else {
		if other.Min < s.Min {
			s.Min = other.Min
		}
		if other.Max > s.Max {
			s.Max = other.Max
		}
	}
	s.Count += other.Count
	s.Sum += other.Sum
	if s.Buckets == nil {
		s.Buckets = make([]uint64, NumBuckets)
	}
	for i := 0; i < len(other.Buckets) && i < len(s.Buckets); i++ {
		s.Buckets[i] += other.Buckets[i]
	}
}
