package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the structured event log: a bounded, severity-tagged
// ring of noteworthy state transitions — breaker trips, journal
// recovery, needle compactions, drive start/stop — that metrics alone
// cannot narrate. Counters say *how often* something happened; the
// event log says *when, in what order, and why*, which is what an
// operator reconstructing an incident actually needs. Every subsystem
// writes into an *EventLog handed to it by configuration, defaulting
// to the process-wide Events ring; `nasdd` serves the ring at /events
// and `nasdctl events` merges the rings of many drives into one
// fleet-wide timeline.

// Severity ranks an event's urgency.
type Severity uint8

// Severities, in escalation order. Filtering is by minimum severity:
// asking for SevWarn returns warnings and errors.
const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// ParseSeverity maps a severity name back to its value.
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(s) {
	case "info":
		return SevInfo, nil
	case "warn", "warning":
		return SevWarn, nil
	case "error":
		return SevError, nil
	}
	return SevInfo, fmt.Errorf("telemetry: unknown severity %q (want info, warn, or error)", s)
}

// MarshalJSON serializes the severity as its name, so /events output
// reads without a decoder ring.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts either the name or the numeric form.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err == nil {
		v, perr := ParseSeverity(name)
		if perr != nil {
			return perr
		}
		*s = v
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*s = Severity(n)
	return nil
}

// Event is one recorded state transition.
type Event struct {
	// Seq orders events within one ring (monotonic per EventLog).
	Seq      uint64   `json:"seq"`
	UnixNano int64    `json:"unix_ns"`
	Severity Severity `json:"severity"`
	// Subsystem is the emitting layer ("breaker", "journal", "needle",
	// "cheops", "drive"); Name is the transition within it ("open",
	// "recovery", "compaction", "start").
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
	// Detail carries the human-readable specifics (which drive, how
	// many records, what cause).
	Detail string `json:"detail,omitempty"`
	// Source labels which drive's ring the event came from; it is blank
	// at emit time and stamped by fleet merging (nasdctl events).
	Source string `json:"source,omitempty"`
}

// Time returns the event timestamp.
func (e *Event) Time() time.Time { return time.Unix(0, e.UnixNano) }

// DefaultEventLogSize is the ring capacity subsystems get by default:
// large enough to span an incident, small enough that the ring is
// always safe to keep resident.
const DefaultEventLogSize = 1024

// EventLog is a bounded ring of recent events. Recording is one
// mutexed slot write; a nil *EventLog swallows emissions, so call
// sites never need nil checks.
type EventLog struct {
	mu     sync.Mutex
	events []Event
	next   int
	filled bool
	seq    uint64
}

// Events is the process-wide default ring. Subsystems whose
// configuration leaves the event log unset record here, mirroring how
// ProcessSpans collects unrouted spans.
var Events = NewEventLog(DefaultEventLogSize)

// NewEventLog returns a ring holding the most recent capacity events.
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{events: make([]Event, capacity)}
}

// Emit records one event, stamping its sequence number and timestamp
// and evicting the oldest when full. Safe on a nil receiver.
func (l *EventLog) Emit(sev Severity, subsystem, name, detail string) {
	if l == nil {
		return
	}
	now := time.Now().UnixNano()
	l.mu.Lock()
	l.seq++
	l.events[l.next] = Event{
		Seq: l.seq, UnixNano: now, Severity: sev,
		Subsystem: subsystem, Name: name, Detail: detail,
	}
	l.next++
	if l.next == len(l.events) {
		l.next = 0
		l.filled = true
	}
	l.mu.Unlock()
}

// Emitf is Emit with a formatted detail string.
func (l *EventLog) Emitf(sev Severity, subsystem, name, format string, args ...any) {
	if l == nil {
		return
	}
	l.Emit(sev, subsystem, name, fmt.Sprintf(format, args...))
}

// Recent returns up to n most recent events of at least min severity,
// oldest first. n <= 0 means every retained event.
func (l *EventLog) Recent(n int, min Severity) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	size := l.next
	if l.filled {
		size = len(l.events)
	}
	if n <= 0 || n > size {
		n = size
	}
	start := l.next - size
	if start < 0 {
		start += len(l.events)
	}
	out := make([]Event, 0, n)
	for i := 0; i < size; i++ {
		e := l.events[(start+i)%len(l.events)]
		if e.Severity >= min {
			out = append(out, e)
		}
	}
	// The severity filter applies before the count cap: "the last 10
	// errors", not "the errors among the last 10 events".
	if len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Len reports how many events the ring currently retains.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.filled {
		return len(l.events)
	}
	return l.next
}

// MergeEvents interleaves several drives' event tails into one
// timeline ordered by timestamp (sequence numbers break ties only
// within one source). Each input's events get Source stamped from the
// parallel sources slice when provided.
func MergeEvents(sets [][]Event, sources []string) []Event {
	var out []Event
	for i, set := range sets {
		for _, e := range set {
			if i < len(sources) && e.Source == "" {
				e.Source = sources[i]
			}
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].UnixNano != out[j].UnixNano {
			return out[i].UnixNano < out[j].UnixNano
		}
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
