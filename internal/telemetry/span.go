package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// Spans are the hierarchical successor to the flat TraceEvent path: one
// logical operation (a striped read, say) is a *trace*, identified by a
// trace ID, and every timed step inside it — the client call, each
// cheops fan-out leg, the drive-side handler with its Table 1 phase
// split, each media I/O — is a *span* carrying its parent's span ID.
// Merging the span logs of every process that served a trace
// reconstructs the whole causal timeline (the Dapper/X-Trace model),
// which is what `nasdctl trace <id>` prints.
//
// Trace IDs are allocated by the outermost caller (the request-ID
// counter; see context.go for why a counter and not a UUID). Span IDs
// must stay distinct when client- and drive-side logs merge, so each
// process draws them from a counter salted with a random high word.

// SpanContext identifies the active span of a trace, as carried in a
// context.Context and (as {trace ID, parent span ID}) on the wire.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

type spanCtxKey struct{}

// WithSpanContext returns ctx carrying sc.
func WithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanContextFrom extracts the active span context from ctx.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.TraceID != 0
}

// spanIDSalt puts a random 32-bit word in the high half of every span
// ID this process allocates, so spans from different processes (client
// and drives) do not collide when merged into one timeline.
var spanIDSalt = func() uint64 {
	var b [4]byte
	_, _ = rand.Read(b[:])
	return uint64(binary.LittleEndian.Uint32(b[:])) << 32
}()

var spanCounter atomic.Uint64

// NextSpanID allocates a process-unique, cross-process-disjoint span ID
// (never 0). Exported for layers that build SpanRecords directly rather
// than through StartSpan (blockdev's per-I/O spans, the drive's
// synthesized phase spans).
func NextSpanID() uint64 {
	return spanIDSalt | (spanCounter.Add(1) & 0xffffffff)
}

// Annotation is one key=value note attached to a span (a status, a
// byte count, a lock-wait total).
type Annotation struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SpanRecord is one completed span, shaped for JSON interchange: the
// drive returns them from the stats RPC and serves them at /trace, and
// nasdctl merges records from several drives by trace ID.
type SpanRecord struct {
	TraceID     uint64       `json:"trace_id"`
	SpanID      uint64       `json:"span_id"`
	Parent      uint64       `json:"parent_id,omitempty"` // 0 = root
	Name        string       `json:"name"`
	StartNS     int64        `json:"start_ns"` // wall clock, unix ns
	EndNS       int64        `json:"end_ns"`
	Annotations []Annotation `json:"annotations,omitempty"`
}

// Dur returns the span duration.
func (r *SpanRecord) Dur() time.Duration { return time.Duration(r.EndNS - r.StartNS) }

// Span is an open span being timed. A nil *Span is valid and records
// nothing, so call sites can instrument unconditionally. Annotate and
// End must be called from the goroutine that started the span.
type Span struct {
	log   *SpanLog
	start time.Time // monotonic, for the duration
	rec   SpanRecord
	done  bool
}

// Context returns the span's identity for propagation (to a child
// context, or onto the wire).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.rec.TraceID, SpanID: s.rec.SpanID}
}

// StartNanos returns the span's wall-clock start (unix ns); 0 for a
// nil span. Layers that synthesize child spans (the drive's Table 1
// phase split) use it to place children inside the parent's interval.
func (s *Span) StartNanos() int64 {
	if s == nil {
		return 0
	}
	return s.rec.StartNS
}

// Annotate attaches a key=value note to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.rec.Annotations = append(s.rec.Annotations, Annotation{Key: key, Value: value})
}

// End completes the span and records it into the log. End is
// idempotent; only the first call records.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.rec.EndNS = s.rec.StartNS + int64(time.Since(s.start))
	s.log.Emit(s.rec)
}

// SpanLog is a bounded per-process ring of completed spans, plus a
// small side table of retained span trees for slow operations: when a
// root span ends over the slow threshold, its whole tree is copied out
// of the ring so it survives even after heavy traffic wraps the ring.
type SpanLog struct {
	mu     sync.Mutex
	spans  []SpanRecord
	next   int
	filled bool

	slow     time.Duration // 0 = retention disabled
	retained map[uint64][]SpanRecord
	retOrder []uint64 // FIFO eviction order of retained trace IDs
	retCap   int
}

// DefaultSpanLogSize is the ring capacity used for default logs.
const DefaultSpanLogSize = 4096

// retainedTraces bounds how many slow-op span trees a log keeps.
const retainedTraces = 32

// NewSpanLog returns a ring holding the most recent capacity spans.
func NewSpanLog(capacity int) *SpanLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanLog{
		spans:    make([]SpanRecord, capacity),
		retained: make(map[uint64][]SpanRecord),
		retCap:   retainedTraces,
	}
}

// ProcessSpans is the process-wide default span log: client connections
// and cheops managers record here unless given their own log, so a
// client process (nasdctl, nasdbench, a test) can always inspect the
// traces it originated.
var ProcessSpans = NewSpanLog(DefaultSpanLogSize)

// SetSlowThreshold enables slow-op retention: when a root span ends
// with duration >= d, its full span tree is copied into a bounded side
// table that ByTrace consults first. d = 0 disables retention.
func (l *SpanLog) SetSlowThreshold(d time.Duration) {
	l.mu.Lock()
	l.slow = d
	l.mu.Unlock()
}

// Emit appends one completed span record. Layers that compute phase
// timings rather than instrumenting them (the drive's Table 1 split)
// use Emit to record synthesized child spans.
func (l *SpanLog) Emit(rec SpanRecord) {
	l.mu.Lock()
	l.spans[l.next] = rec
	l.next++
	if l.next == len(l.spans) {
		l.next = 0
		l.filled = true
	}
	if rec.Parent == 0 && l.slow > 0 && rec.EndNS-rec.StartNS >= int64(l.slow) {
		l.retainLocked(rec.TraceID)
	}
	l.mu.Unlock()
}

// retainLocked copies every ring span of traceID into the retained
// table, evicting the oldest retained trace when full. Caller holds mu.
func (l *SpanLog) retainLocked(traceID uint64) {
	var tree []SpanRecord
	for i := range l.spans {
		if (l.filled || i < l.next) && l.spans[i].TraceID == traceID {
			tree = append(tree, l.spans[i])
		}
	}
	if _, ok := l.retained[traceID]; !ok {
		l.retOrder = append(l.retOrder, traceID)
		for len(l.retOrder) > l.retCap {
			delete(l.retained, l.retOrder[0])
			l.retOrder = l.retOrder[1:]
		}
	}
	l.retained[traceID] = tree
}

// Recent returns up to n most recent spans, oldest first.
func (l *SpanLog) Recent(n int) []SpanRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	size := l.next
	if l.filled {
		size = len(l.spans)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]SpanRecord, 0, n)
	start := l.next - n
	if start < 0 {
		start += len(l.spans)
	}
	for i := 0; i < n; i++ {
		out = append(out, l.spans[(start+i)%len(l.spans)])
	}
	return out
}

// ByTrace returns every span recorded for traceID, consulting the
// slow-op retained table first and falling back to a ring scan.
func (l *SpanLog) ByTrace(traceID uint64) []SpanRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	if tree, ok := l.retained[traceID]; ok {
		return append([]SpanRecord(nil), tree...)
	}
	var out []SpanRecord
	for i := range l.spans {
		if (l.filled || i < l.next) && l.spans[i].TraceID == traceID {
			out = append(out, l.spans[i])
		}
	}
	return out
}

// StartSpan opens a span named name as a child of ctx's active span.
// Without an active span the new span is a root: it reuses ctx's
// request ID as the trace ID when one is present (so the span plane and
// the older request-ID plane agree on identity), and allocates a fresh
// trace otherwise. The returned context carries the new span, so nested
// calls become children. A nil log returns ctx unchanged and a nil
// (no-op) span.
func (l *SpanLog) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if l == nil {
		return ctx, nil
	}
	var traceID, parent uint64
	if sc, ok := SpanContextFrom(ctx); ok {
		traceID, parent = sc.TraceID, sc.SpanID
	} else if id, ok := RequestIDFrom(ctx); ok {
		traceID = id
	} else {
		traceID = NextRequestID()
	}
	sp := l.open(traceID, parent, name)
	return WithSpanContext(ctx, sp.Context()), sp
}

// StartRemote opens a span resuming a trace received from the wire:
// traceID and parentSpan are the request's trace context as stamped by
// the remote caller. A zero traceID (an untraced request) or nil log
// returns a nil no-op span.
func (l *SpanLog) StartRemote(traceID, parentSpan uint64, name string) *Span {
	if l == nil || traceID == 0 {
		return nil
	}
	return l.open(traceID, parentSpan, name)
}

func (l *SpanLog) open(traceID, parent uint64, name string) *Span {
	now := time.Now()
	return &Span{
		log:   l,
		start: now,
		rec: SpanRecord{
			TraceID: traceID,
			SpanID:  NextSpanID(),
			Parent:  parent,
			Name:    name,
			StartNS: now.UnixNano(),
		},
	}
}
