package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue depths, in-flight
// request counts). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry is a named collection of metrics. Metric accessors are
// get-or-create, so independent subsystems can share one registry
// without coordinating initialization; all methods are safe for
// concurrent use and the hot paths (updating a metric already in hand)
// are lock-free.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// Func registers a pull-style gauge: fn is evaluated at snapshot time
// and reported alongside the gauges. It is how subsystems that already
// keep their own counters (the block cache, device queue depths) expose
// them without double counting. Re-registering a name replaces the
// callback.
func (r *Registry) Func(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot is a point-in-time copy of a registry's metrics, shaped for
// JSON interchange: `nasdd` serves it at /metrics, the drive returns it
// from the stats RPC, and nasdctl/nasdbench decode and pretty-print it.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric. Func metrics are evaluated here and
// land in Gauges. The snapshot is internally consistent per metric
// (each value is an atomic read) but not across metrics, which is the
// usual contract for low-overhead instrumentation.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.funcs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, fn := range r.funcs {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Merge folds other into s: counters and gauges add, histograms merge
// bucket-by-bucket. Merging is how per-drive snapshots aggregate into a
// striped-system view (the Figure 7 scaling curves sum drive
// throughput the same way).
func (s *Snapshot) Merge(other Snapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]uint64)
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]int64)
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot)
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	for name, v := range other.Gauges {
		s.Gauges[name] += v
	}
	for name, h := range other.Histograms {
		cur := s.Histograms[name]
		cur.Merge(h)
		s.Histograms[name] = cur
	}
}

// Names returns the sorted names of every metric in the snapshot (used
// by the text formatters for stable output).
func (s *Snapshot) Names() []string {
	seen := make(map[string]bool, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name := range s.Counters {
		seen[name] = true
	}
	for name := range s.Gauges {
		seen[name] = true
	}
	for name := range s.Histograms {
		seen[name] = true
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
