package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// This file renders a merged set of span records — typically pulled
// from several drives plus the client's own log — as an indented ASCII
// timeline: one line per span, children under parents, siblings in
// start order, with each span's offset from the trace start and its
// duration. Fan-out legs that run much longer than their siblings are
// flagged as stragglers, which is the diagnosis aggregates cannot make
// (a striped read is as slow as its slowest leg).

// MergeSpans combines span record sets from several sources, dropping
// duplicates (the same span fetched twice) by (trace ID, span ID).
func MergeSpans(sets ...[]SpanRecord) []SpanRecord {
	type key struct{ t, s uint64 }
	seen := make(map[key]bool)
	var out []SpanRecord
	for _, set := range sets {
		for _, r := range set {
			k := key{r.TraceID, r.SpanID}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// stragglerFactor flags a sibling span as a straggler when its duration
// exceeds this multiple of the median of its like-named siblings (and
// there are at least three to compare). stragglerMinExcess additionally
// requires the absolute gap over the median to be meaningful, so
// sub-microsecond jitter between tiny spans never flags.
const (
	stragglerFactor           = 2.0
	stragglerMinExcess        = 50 * time.Microsecond
	stragglerMinGroup         = 3
	stragglerAnnotationSuffix = "<-- straggler"
)

// WriteTimeline renders the spans of one trace as an indented tree.
// Spans whose parent is missing from the set (a layer whose log wrapped
// or was not fetched) are promoted to roots, so partial merges still
// render. Spans from other traces in the input are ignored when
// traceID is non-zero.
func WriteTimeline(w io.Writer, traceID uint64, spans []SpanRecord) {
	var set []SpanRecord
	for _, r := range spans {
		if traceID == 0 || r.TraceID == traceID {
			set = append(set, r)
		}
	}
	if len(set) == 0 {
		fmt.Fprintf(w, "(no spans for trace %d)\n", traceID)
		return
	}
	byID := make(map[uint64]int, len(set))
	for i, r := range set {
		byID[r.SpanID] = i
	}
	children := make(map[uint64][]int)
	var roots []int
	for i, r := range set {
		if r.Parent != 0 {
			if _, ok := byID[r.Parent]; ok {
				children[r.Parent] = append(children[r.Parent], i)
				continue
			}
		}
		roots = append(roots, i)
	}
	byStart := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool {
			if set[idx[a]].StartNS != set[idx[b]].StartNS {
				return set[idx[a]].StartNS < set[idx[b]].StartNS
			}
			return set[idx[a]].SpanID < set[idx[b]].SpanID
		})
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	t0 := set[roots[0]].StartNS
	var tEnd int64
	for _, r := range set {
		if r.StartNS < t0 {
			t0 = r.StartNS
		}
		if r.EndNS > tEnd {
			tEnd = r.EndNS
		}
	}
	fmt.Fprintf(w, "trace %d: %d spans, %s total\n",
		set[0].TraceID, len(set), time.Duration(tEnd-t0).Round(time.Microsecond))

	var render func(idx []int, depth int)
	render = func(idx []int, depth int) {
		slow := stragglers(set, idx)
		for n, i := range idx {
			r := set[i]
			line := fmt.Sprintf("%s%s", strings.Repeat("  ", depth), r.Name)
			notes := make([]string, 0, len(r.Annotations)+1)
			for _, a := range r.Annotations {
				notes = append(notes, a.Key+"="+a.Value)
			}
			if slow[n] {
				notes = append(notes, stragglerAnnotationSuffix)
			}
			fmt.Fprintf(w, "  +%-10s %-40s %10s  %s\n",
				time.Duration(r.StartNS-t0).Round(time.Microsecond),
				line,
				r.Dur().Round(time.Microsecond),
				strings.Join(notes, " "))
			render(children[r.SpanID], depth+1)
		}
	}
	render(roots, 0)
}

// stragglers reports which of a sibling group's spans run much longer
// than their peers. Only like-named siblings are compared (the parallel
// legs of one fan-out; a digest span is not a straggler for being
// slower than a block read), groups of fewer than stragglerMinGroup
// have no basis for comparison, and the gap over the median must clear
// both a relative factor and an absolute floor.
func stragglers(set []SpanRecord, idx []int) []bool {
	out := make([]bool, len(idx))
	byName := make(map[string][]int)
	for n, i := range idx {
		byName[set[i].Name] = append(byName[set[i].Name], n)
	}
	for _, group := range byName {
		if len(group) < stragglerMinGroup {
			continue
		}
		durs := make([]int64, len(group))
		for g, n := range group {
			durs[g] = int64(set[idx[n]].Dur())
		}
		sorted := append([]int64(nil), durs...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		median := sorted[len(sorted)/2]
		if median <= 0 {
			continue
		}
		for g, n := range group {
			d := durs[g]
			if float64(d) > stragglerFactor*float64(median) && time.Duration(d-median) >= stragglerMinExcess {
				out[n] = true
			}
		}
	}
	return out
}
