// Package telemetry is the repository's observability core: a
// dependency-free metrics library (atomic counters, gauges, and
// fixed-bucket latency histograms with snapshot and merge), request-ID
// propagation through context.Context, a bounded in-memory trace log,
// and HTTP handlers that expose a registry as expvar-style JSON.
//
// The paper's evaluation is built on exactly this kind of per-operation
// accounting: Table 1 decomposes each NASD request into marshaling,
// digest, object-system, and media components, and Figures 5-7 measure
// drive and striping throughput as load scales. The packages that
// reproduce those results (internal/rpc, internal/drive,
// internal/blockdev, internal/cache, internal/cheops) all publish their
// counters and service-time histograms into telemetry registries so the
// same quantities can be observed from a live system: `nasdd` serves a
// registry at /metrics, `nasdctl stats` fetches a drive's snapshot over
// RPC, and `nasdbench -stats` reproduces the Table 1 cost split from a
// live workload.
//
// Beyond aggregates, the package carries a span plane for per-request
// timelines: a Span is a timed interval with a trace ID, span ID,
// parent span ID, and annotations, recorded into a bounded SpanLog
// ring (plus a small retained table pinning traces whose root exceeded
// a slow threshold). Span context propagates in-process on the
// context.Context (WithSpanContext / SpanLog.StartSpan) and across the
// wire in the rpc request header (SpanLog.StartRemote on the serving
// side), so one trace ID links a client op, the Cheops fan-out legs it
// spawned, and the drive-side handler spans with their Table 1 phase
// children (digest / object-system / media). Span IDs are salted with
// a per-process random high word so records minted by different
// processes merge without collision (MergeSpans), and WriteTimeline
// renders a merged trace as one indented timeline, flagging straggler
// legs among parallel siblings. See DESIGN.md §5 for the full model
// and an example timeline.
//
// Everything here is built on sync/atomic and the standard library
// only, so any package in the tree can depend on it without cycles.
// Histograms bucket int64 values (usually nanoseconds) into
// power-of-two buckets: bucket 0 holds values <= 1 and bucket i holds
// (2^(i-1), 2^i], which keeps Observe lock-free and makes two
// snapshots mergeable bucket-by-bucket.
package telemetry
