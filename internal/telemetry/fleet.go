package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file is the fleet view: pure aggregation and rendering over
// many drives' snapshots. The paper's scaling argument (Figures 10-12)
// is about aggregate bandwidth across drives; this is the plane that
// lets an operator see that aggregate as one system. nasdctl owns the
// dialing — everything here works on already-fetched data, so it is
// unit-testable without a network.

// FleetDrive is one drive's contribution to a fleet snapshot.
type FleetDrive struct {
	Addr    string   `json:"addr"`
	DriveID uint64   `json:"drive_id"`
	Err     string   `json:"err,omitempty"` // poll failure; Metrics/Events empty
	Metrics Snapshot `json:"metrics"`
	Events  []Event  `json:"events,omitempty"`
}

// FleetSnapshot is one poll of an entire fleet: the per-drive
// snapshots plus their merge (counters/gauges summed, histograms —
// and their exemplars — merged bucket-by-bucket).
type FleetSnapshot struct {
	UnixNano int64        `json:"unix_ns"`
	Drives   []FleetDrive `json:"drives"`
	Merged   Snapshot     `json:"merged"`
}

// BuildFleet assembles a FleetSnapshot from per-drive polls, computing
// the merged aggregate. Failed polls (Err set) contribute nothing to
// the merge but stay listed, so a down drive is visible rather than
// silently absent.
func BuildFleet(drives []FleetDrive) FleetSnapshot {
	fs := FleetSnapshot{UnixNano: time.Now().UnixNano(), Drives: drives}
	for _, d := range drives {
		if d.Err != "" {
			continue
		}
		fs.Merged.Merge(d.Metrics)
	}
	return fs
}

// --- Per-tenant attribution ----------------------------------------------

// tenantFamily is the metric-name root under which the drive splits
// its per-op family by partition: "drive.part.<P>.op.<op>.<metric>".
const tenantFamily = "drive.part."

// tenantOf parses a per-tenant metric name, returning the partition
// and the name re-rooted under "drive." (e.g. "drive.part.5.op.read.calls"
// -> 5, "drive.op.read.calls").
func tenantOf(name string) (uint16, string, bool) {
	rest, ok := strings.CutPrefix(name, tenantFamily)
	if !ok {
		return 0, "", false
	}
	ps, tail, ok := strings.Cut(rest, ".")
	if !ok {
		return 0, "", false
	}
	p, err := strconv.ParseUint(ps, 10, 16)
	if err != nil {
		return 0, "", false
	}
	return uint16(p), "drive." + tail, true
}

// TenantParts returns the sorted partitions that have per-tenant
// metrics in s.
func TenantParts(s Snapshot) []uint16 {
	seen := make(map[uint16]bool)
	collect := func(name string) {
		if p, _, ok := tenantOf(name); ok {
			seen[p] = true
		}
	}
	for name := range s.Counters {
		collect(name)
	}
	for name := range s.Histograms {
		collect(name)
	}
	parts := make([]uint16, 0, len(seen))
	for p := range seen {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	return parts
}

// TenantSnapshot extracts one partition's metrics from s, re-rooted
// under "drive.op." so every existing formatter (WriteOpTable, OpRows)
// renders a single tenant the same way it renders a whole drive.
// /metrics?partition=P serves exactly this.
func TenantSnapshot(s Snapshot, part uint16) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for name, v := range s.Counters {
		if p, rooted, ok := tenantOf(name); ok && p == part {
			out.Counters[rooted] = v
		}
	}
	for name, g := range s.Gauges {
		if p, rooted, ok := tenantOf(name); ok && p == part {
			out.Gauges[rooted] = g
		}
	}
	for name, h := range s.Histograms {
		if p, rooted, ok := tenantOf(name); ok && p == part {
			out.Histograms[rooted] = h
		}
	}
	return out
}

// --- Totals and rates ----------------------------------------------------

// OpTotals sums a snapshot's per-op drive family into one line: calls,
// errors, and bytes moved. Prefix is the family root ("drive.op" for
// the whole drive, or a TenantSnapshot's re-rooted family).
func OpTotals(s Snapshot, prefix string) (calls, errs, bytesIn, bytesOut uint64) {
	for _, r := range OpRows(s, prefix) {
		calls += r.Calls
		errs += r.Errors
		bytesIn += r.BytesIn
		bytesOut += r.BytesOut
	}
	return
}

// MergedSvc merges every "<prefix>.<op>.svc_ns" histogram in s into
// one service-time distribution (with merged exemplars).
func MergedSvc(s Snapshot, prefix string) HistogramSnapshot {
	var out HistogramSnapshot
	for name, h := range s.Histograms {
		if strings.HasPrefix(name, prefix+".") && strings.HasSuffix(name, ".svc_ns") {
			out.Merge(h)
		}
	}
	return out
}

// --- Rendering -----------------------------------------------------------

// fmtRate renders a per-second rate with adaptive precision.
func fmtRate(v float64) string {
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	case v == 0:
		return "0"
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// driveRow is one rendered fleet-table line.
type driveRow struct {
	label                  string
	calls, errs, bIn, bOut uint64
	svc                    HistogramSnapshot
	events                 []Event
	down                   string
}

// WriteFleetTable renders the fleet table: one row per drive plus the
// aggregate, with op and MB/s rates computed against prev when a
// previous poll is supplied (nasdctl top) and cumulative totals
// otherwise (nasdctl fleet). It returns through w so tests can assert
// on the output.
func WriteFleetTable(w io.Writer, cur FleetSnapshot, prev *FleetSnapshot) {
	secs := 0.0
	if prev != nil && cur.UnixNano > prev.UnixNano {
		secs = float64(cur.UnixNano-prev.UnixNano) / float64(time.Second)
	}
	prevDrive := func(addr string) *FleetDrive {
		if prev == nil {
			return nil
		}
		for i := range prev.Drives {
			if prev.Drives[i].Addr == addr {
				return &prev.Drives[i]
			}
		}
		return nil
	}

	rows := make([]driveRow, 0, len(cur.Drives)+1)
	for _, d := range cur.Drives {
		r := driveRow{label: fmt.Sprintf("drive %d %s", d.DriveID, d.Addr), down: d.Err, events: d.Events}
		if d.Err == "" {
			r.calls, r.errs, r.bIn, r.bOut = OpTotals(d.Metrics, "drive.op")
			r.svc = MergedSvc(d.Metrics, "drive.op")
			if p := prevDrive(d.Addr); p != nil && p.Err == "" {
				pc, pe, pi, po := OpTotals(p.Metrics, "drive.op")
				r.calls -= min(r.calls, pc)
				r.errs -= min(r.errs, pe)
				r.bIn -= min(r.bIn, pi)
				r.bOut -= min(r.bOut, po)
			}
		}
		rows = append(rows, r)
	}
	agg := driveRow{label: "TOTAL"}
	agg.calls, agg.errs, agg.bIn, agg.bOut = OpTotals(cur.Merged, "drive.op")
	agg.svc = MergedSvc(cur.Merged, "drive.op")
	if prev != nil {
		pc, pe, pi, po := OpTotals(prev.Merged, "drive.op")
		agg.calls -= min(agg.calls, pc)
		agg.errs -= min(agg.errs, pe)
		agg.bIn -= min(agg.bIn, pi)
		agg.bOut -= min(agg.bOut, po)
	}
	rows = append(rows, agg)

	unit, div := "ops", 1.0
	if secs > 0 {
		unit, div = "ops/s", secs
	}
	mbUnit := "MB"
	if secs > 0 {
		mbUnit = "MB/s"
	}
	fmt.Fprintf(w, "%-28s %10s %8s %10s %10s %10s %10s %7s\n",
		"", unit, "errors", mbUnit+" in", mbUnit+" out", "p50", "p99", "events")
	for _, r := range rows {
		if r.down != "" {
			fmt.Fprintf(w, "%-28s DOWN: %s\n", r.label, r.down)
			continue
		}
		fmt.Fprintf(w, "%-28s %10s %8d %10s %10s %10s %10s %7d\n",
			r.label,
			fmtRate(float64(r.calls)/div), r.errs,
			fmtRate(float64(r.bIn)/(1<<20)/div), fmtRate(float64(r.bOut)/(1<<20)/div),
			time.Duration(r.svc.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(r.svc.Quantile(0.99)).Round(time.Microsecond),
			len(r.events))
	}

	// Per-tenant split of the merged fleet, keyed by the capability's
	// partition identity (the tenant key the ROADMAP QoS item needs).
	WriteTenantTable(w, cur.Merged, "fleet-wide cumulative")

	// Breaker / repair state only exists in a cheops manager's registry;
	// show it when the polled snapshots carried it (in-process fleets).
	var breakers []string
	for name, v := range cur.Merged.Gauges {
		if strings.HasPrefix(name, "cheops.drive.") && strings.HasSuffix(name, ".breaker") {
			breakers = append(breakers, fmt.Sprintf("%s=%d", name, v))
		}
	}
	if len(breakers) > 0 {
		sort.Strings(breakers)
		fmt.Fprintf(w, "\n%s  pending_repairs=%d\n", strings.Join(breakers, " "), cur.Merged.Gauges["cheops.pending_repairs"])
	}

	WriteExemplars(w, cur.Merged, "drive.op")
}

// WriteTenantTable renders the per-tenant (partition) split of s: op
// totals, service quantiles, and the drive QoS plane's verdict columns
// — shed (deadline load-shed before media time), thrtl (token-bucket
// rate rejections), rej (queue-full rejections), and the live queue
// depth. A tenant whose shed/thrtl columns climb is being limited by
// policy; a tenant whose p99 climbs with zero QoS activity is seeing
// real device contention. Prints nothing when s carries no per-tenant
// metrics, so callers can invoke it unconditionally.
func WriteTenantTable(w io.Writer, s Snapshot, scope string) {
	parts := TenantParts(s)
	if len(parts) == 0 {
		return
	}
	fmt.Fprintf(w, "\nper-tenant (partition) split, %s:\n", scope)
	fmt.Fprintf(w, "%-12s %10s %8s %10s %10s %10s %10s %8s %8s %8s %6s\n",
		"tenant", "ops", "errors", "MB in", "MB out", "p50", "p99",
		"shed", "thrtl", "rej", "queue")
	for _, p := range parts {
		ts := TenantSnapshot(s, p)
		calls, errs, bIn, bOut := OpTotals(ts, "drive.op")
		svc := MergedSvc(ts, "drive.op")
		fmt.Fprintf(w, "%-12s %10d %8d %10.2f %10.2f %10s %10s %8d %8d %8d %6d\n",
			"part."+strconv.Itoa(int(p)), calls, errs,
			float64(bIn)/(1<<20), float64(bOut)/(1<<20),
			time.Duration(svc.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(svc.Quantile(0.99)).Round(time.Microsecond),
			ts.Counters["drive.qos.shed"], ts.Counters["drive.qos.throttled"],
			ts.Counters["drive.qos.rejected"], ts.Gauges["drive.qos.queue_depth"])
	}
}

// WriteExemplars prints each busy op's p99 exemplar: the trace ID an
// operator feeds to `nasdctl trace` to see where the tail latency
// went. Ops without a traced observation are skipped.
func WriteExemplars(w io.Writer, s Snapshot, prefix string) {
	type exRow struct {
		op string
		ex Exemplar
	}
	var rows []exRow
	for _, r := range OpRows(s, prefix) {
		if r.Calls == 0 {
			continue
		}
		if e := r.Svc.ExemplarNear(0.99); e != nil {
			rows = append(rows, exRow{op: r.Op, ex: *e})
		}
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "\np99 exemplars (drill down with `nasdctl trace <trace-id>`):\n")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %10s  trace %d\n",
			r.op, time.Duration(r.ex.Value).Round(time.Microsecond), r.ex.TraceID)
	}
}

// WriteEvents renders an event tail, one line per event, oldest first.
func WriteEvents(w io.Writer, events []Event) {
	if len(events) == 0 {
		fmt.Fprintln(w, "(no events)")
		return
	}
	for _, e := range events {
		src := e.Source
		if src == "" {
			src = "-"
		}
		fmt.Fprintf(w, "%s %-5s %-20s %-10s %-14s %s\n",
			e.Time().Format("15:04:05.000"), e.Severity, src,
			e.Subsystem, e.Name, e.Detail)
	}
}
