package telemetry

import (
	"strings"
	"testing"
)

// TestObserveTraceExemplar checks that traced observations retain a
// bucket-consistent exemplar and untraced ones never displace it.
func TestObserveTraceExemplar(t *testing.T) {
	var h Histogram
	h.ObserveTrace(1000, 42)
	h.Observe(900) // untraced, same bucket: must not displace
	h.ObserveTrace(3, 0)

	s := h.Snapshot()
	if len(s.Exemplars) != 1 {
		t.Fatalf("exemplars = %+v, want exactly one (traceID 0 must not retain)", s.Exemplars)
	}
	e := s.Exemplars[0]
	if e.TraceID != 42 || e.Value != 1000 {
		t.Fatalf("exemplar = %+v", e)
	}
	if e.Bucket != bucketIndex(1000) {
		t.Fatalf("exemplar bucket = %d, want %d (bucketIndex of its value)", e.Bucket, bucketIndex(1000))
	}
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3 (every observation counts)", s.Count)
	}

	// A newer traced observation in the same bucket displaces the old.
	h.ObserveTrace(1001, 43)
	s = h.Snapshot()
	if len(s.Exemplars) != 1 || s.Exemplars[0].TraceID != 43 {
		t.Fatalf("after displacement: %+v", s.Exemplars)
	}
}

// TestExemplarMergeBucketConsistent merges two snapshots and checks
// every surviving exemplar still sits in its own bucket, buckets stay
// in ascending order, and per-bucket conflicts resolve to the newest.
func TestExemplarMergeBucketConsistent(t *testing.T) {
	var a, b Histogram
	a.ObserveTrace(100, 1)   // bucket 7
	a.ObserveTrace(5000, 2)  // bucket 13
	b.ObserveTrace(120, 3)   // bucket 7, observed after a's -> must win
	b.ObserveTrace(70000, 4) // bucket 17

	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)

	if sa.Count != 4 {
		t.Fatalf("merged count = %d, want 4", sa.Count)
	}
	if len(sa.Exemplars) != 3 {
		t.Fatalf("merged exemplars = %+v, want 3 (one per occupied bucket)", sa.Exemplars)
	}
	seen := make(map[int]bool)
	prev := -1
	for _, e := range sa.Exemplars {
		if e.Bucket != bucketIndex(e.Value) {
			t.Fatalf("exemplar %+v not in its value's bucket %d", e, bucketIndex(e.Value))
		}
		if sa.Buckets[e.Bucket] == 0 {
			t.Fatalf("exemplar %+v points at an empty bucket", e)
		}
		if e.Bucket <= prev {
			t.Fatalf("exemplar buckets not ascending: %+v", sa.Exemplars)
		}
		if seen[e.Bucket] {
			t.Fatalf("bucket %d has two exemplars", e.Bucket)
		}
		seen[e.Bucket] = true
		prev = e.Bucket
	}
	// b's bucket-7 exemplar carried the later timestamp.
	if sa.Exemplars[0].TraceID != 3 {
		t.Fatalf("bucket conflict kept trace %d, want the newer 3", sa.Exemplars[0].TraceID)
	}
}

// TestExemplarNear checks the quantile-to-exemplar mapping prefers the
// tail's evidence.
func TestExemplarNear(t *testing.T) {
	var empty HistogramSnapshot
	if e := empty.ExemplarNear(0.99); e != nil {
		t.Fatalf("empty histogram returned exemplar %+v", e)
	}

	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(100)
	}
	h.ObserveTrace(1<<20, 77) // the single tail observation, traced
	s := h.Snapshot()
	e := s.ExemplarNear(0.99)
	if e == nil || e.TraceID != 77 {
		t.Fatalf("p99 exemplar = %+v, want the traced tail observation", e)
	}

	// When only lower buckets hold exemplars, the nearest-from-below one
	// is still returned rather than nothing.
	var lo Histogram
	lo.ObserveTrace(100, 5)
	for i := 0; i < 99; i++ {
		lo.Observe(1 << 20) // tail mass is untraced
	}
	ls := lo.Snapshot()
	if e := ls.ExemplarNear(0.99); e == nil || e.TraceID != 5 {
		t.Fatalf("fallback exemplar = %+v, want trace 5", e)
	}
}

// TestWriteExemplars smoke-checks the renderer links ops to trace IDs.
func TestWriteExemplars(t *testing.T) {
	r := NewRegistry()
	r.Counter("drive.op.read.calls").Add(10)
	r.Histogram("drive.op.read.svc_ns").ObserveTrace(12345, 987)
	var sb strings.Builder
	WriteExemplars(&sb, r.Snapshot(), "drive.op")
	out := sb.String()
	if !strings.Contains(out, "987") || !strings.Contains(out, "read") {
		t.Fatalf("exemplar render missing op or trace ID:\n%s", out)
	}
}
