package telemetry

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
)

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1024, 10}, {1025, 11}, {1 << 40, 40}, {1<<62 + 1, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Each value must land in the bucket whose bound covers it: bucket i
	// holds (BucketBound(i-1), BucketBound(i)].
	for _, v := range []int64{1, 2, 7, 100, 4096, 1 << 30} {
		i := bucketIndex(v)
		if v > BucketBound(i) {
			t.Errorf("value %d above bound of its bucket %d (%d)", v, i, BucketBound(i))
		}
		if i > 0 && v <= BucketBound(i-1) {
			t.Errorf("value %d should be in an earlier bucket than %d", v, i)
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Sum != 1000*1001/2 {
		t.Fatalf("sum = %d, want %d", s.Sum, 1000*1001/2)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Fatalf("min/max = %d/%d, want 1/1000", s.Min, s.Max)
	}
	if m := s.Mean(); m != 500 {
		t.Fatalf("mean = %d, want 500", m)
	}
	// Power-of-two buckets bound quantiles within a factor of two.
	p50 := s.Quantile(0.50)
	if p50 < 250 || p50 > 1000 {
		t.Fatalf("p50 = %d, outside [250, 1000]", p50)
	}
	if q := s.Quantile(0); q != s.Min {
		t.Fatalf("q0 = %d, want min %d", q, s.Min)
	}
	if q := s.Quantile(1); q != s.Max {
		t.Fatalf("q1 = %d, want max %d", q, s.Max)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for v := int64(1); v <= 100; v++ {
		a.Observe(v)
		b.Observe(v * 1000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 200 {
		t.Fatalf("merged count = %d, want 200", sa.Count)
	}
	if sa.Min != 1 || sa.Max != 100000 {
		t.Fatalf("merged min/max = %d/%d, want 1/100000", sa.Min, sa.Max)
	}
	var total uint64
	for _, n := range sa.Buckets {
		total += n
	}
	if total != 200 {
		t.Fatalf("merged bucket mass = %d, want 200", total)
	}
	// Merging into an empty snapshot adopts the other's extremes.
	var zero HistogramSnapshot
	zero.Merge(sb)
	if zero.Min != 1000 || zero.Max != 100000 || zero.Count != 100 {
		t.Fatalf("merge into zero: %+v", zero)
	}
}

func TestSnapshotMergeAndJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.calls").Add(3)
	r.Gauge("a.depth").Set(-2)
	r.Histogram("a.svc_ns").Observe(500)
	r.Func("a.pull", func() int64 { return 42 })

	s := r.Snapshot()
	if s.Counters["a.calls"] != 3 || s.Gauges["a.depth"] != -2 || s.Gauges["a.pull"] != 42 {
		t.Fatalf("snapshot: %+v", s)
	}

	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("JSON round trip changed snapshot:\n%+v\n%+v", s, back)
	}

	other := r.Snapshot()
	s.Merge(other)
	if s.Counters["a.calls"] != 6 {
		t.Fatalf("merged counter = %d, want 6", s.Counters["a.calls"])
	}
	if s.Histograms["a.svc_ns"].Count != 2 {
		t.Fatalf("merged histogram count = %d, want 2", s.Histograms["a.svc_ns"].Count)
	}
}

// TestMetricsHandlerRoundTrip drives the /metrics HTTP endpoint the way
// curl would and checks the counters survive the trip.
func TestMetricsHandlerRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rpc.server.requests").Add(17)
	r.Histogram("drive.op.read.svc_ns").Observe(1234)

	srv := httptest.NewServer(NewMux(r.Snapshot, NewTraceLog(4), NewSpanLog(4), NewEventLog(4)))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var s Snapshot
	if err := json.NewDecoder(res.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["rpc.server.requests"] != 17 {
		t.Fatalf("counter over HTTP = %d, want 17", s.Counters["rpc.server.requests"])
	}
	if h := s.Histograms["drive.op.read.svc_ns"]; h.Count != 1 || h.Sum != 1234 {
		t.Fatalf("histogram over HTTP: %+v", h)
	}

	health, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer health.Body.Close()
	var hb map[string]any
	if err := json.NewDecoder(health.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	if hb["status"] != "ok" {
		t.Fatalf("healthz: %+v", hb)
	}
}

// TestSnapshotRaceSafety exercises concurrent updates against
// snapshots; run with -race.
func TestSnapshotRaceSafety(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(7)
			}
		}()
	}
	for i := 0; i < 100; i++ {
		s := r.Snapshot()
		if s.Histograms["h"].Count > 0 && s.Histograms["h"].Min != 7 {
			t.Errorf("min = %d, want 7", s.Histograms["h"].Min)
		}
	}
	close(stop)
	wg.Wait()
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if id, ok := RequestIDFrom(ctx); ok || id != 0 {
		t.Fatalf("fresh context should carry no ID, got %d", id)
	}
	ctx1, id1 := WithRequestID(ctx)
	if id1 == 0 {
		t.Fatal("request IDs must be nonzero")
	}
	// A second WithRequestID keeps the outermost ID.
	ctx2, id2 := WithRequestID(ctx1)
	if id2 != id1 {
		t.Fatalf("nested WithRequestID minted a new ID: %d != %d", id2, id1)
	}
	if got, ok := RequestIDFrom(ctx2); !ok || got != id1 {
		t.Fatalf("RequestIDFrom = %d, %v", got, ok)
	}
	ctx3 := WithExplicitRequestID(ctx2, 99)
	if got, _ := RequestIDFrom(ctx3); got != 99 {
		t.Fatalf("explicit ID not honored: %d", got)
	}
}

func TestTraceLogRing(t *testing.T) {
	log := NewTraceLog(4)
	for i := 1; i <= 6; i++ {
		log.Add(TraceEvent{RequestID: uint64(i)})
	}
	got := log.Recent(10)
	if len(got) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(got))
	}
	// Oldest first, bounded by capacity: 3,4,5,6.
	for i, ev := range got {
		if want := uint64(i + 3); ev.RequestID != want {
			t.Fatalf("event %d has ID %d, want %d", i, ev.RequestID, want)
		}
	}
	if n := len(log.Recent(2)); n != 2 {
		t.Fatalf("Recent(2) returned %d", n)
	}
}
