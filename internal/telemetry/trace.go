package telemetry

import (
	"sync"
	"time"
)

// TraceEvent is one completed request as seen by a server: which
// operation ran under which request ID, how long it took, and how it
// ended. Events are what `nasdctl stats -trace` prints.
type TraceEvent struct {
	RequestID uint64 `json:"request_id"` // 0 = client did not trace
	Op        string `json:"op"`
	Status    string `json:"status"`
	DurNanos  int64  `json:"dur_ns"`
	Bytes     int    `json:"bytes"`
	UnixNano  int64  `json:"unix_ns"` // completion time
}

// Dur returns the event duration.
func (e *TraceEvent) Dur() time.Duration { return time.Duration(e.DurNanos) }

// TraceLog is a bounded ring of recent trace events. Recording is
// cheap (one mutexed slot write), so a drive can log every request it
// serves and a debugging session can ask for the tail.
type TraceLog struct {
	mu     sync.Mutex
	events []TraceEvent
	next   int
	filled bool
}

// NewTraceLog returns a ring holding the most recent capacity events.
func NewTraceLog(capacity int) *TraceLog {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceLog{events: make([]TraceEvent, capacity)}
}

// Add records one event, evicting the oldest when full.
func (l *TraceLog) Add(e TraceEvent) {
	l.mu.Lock()
	l.events[l.next] = e
	l.next++
	if l.next == len(l.events) {
		l.next = 0
		l.filled = true
	}
	l.mu.Unlock()
}

// Recent returns up to n most recent events, oldest first.
func (l *TraceLog) Recent(n int) []TraceEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	size := l.next
	if l.filled {
		size = len(l.events)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]TraceEvent, 0, n)
	start := l.next - n
	if start < 0 {
		start += len(l.events)
	}
	for i := 0; i < n; i++ {
		out = append(out, l.events[(start+i)%len(l.events)])
	}
	return out
}
