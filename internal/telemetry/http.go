package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// MetricsHandler serves the snapshot produced by snap as JSON, the
// expvar-style endpoint `curl` and dashboards read. snap is called per
// request so the response is always current. With ?partition=P the
// response narrows to that tenant's per-partition metric family,
// re-rooted under "drive.op." (see TenantSnapshot).
func MetricsHandler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := snap()
		if ps := r.URL.Query().Get("partition"); ps != "" {
			p, err := strconv.ParseUint(ps, 10, 16)
			if err != nil {
				http.Error(w, "bad partition: "+err.Error(), http.StatusBadRequest)
				return
			}
			s = TenantSnapshot(s, uint16(p))
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s)
	})
}

// EventsHandler serves the event ring as JSON:
//
//	/events?n=N        the last N events (default 128)
//	/events?min=warn   only events of at least that severity
//
// Responses are capped at MaxTraceResponse entries for the same reason
// /trace is.
func EventsHandler(events *EventLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := clampTraceN(r.URL.Query().Get("n"), 128)
		min := SevInfo
		if ms := r.URL.Query().Get("min"); ms != "" {
			var err error
			if min, err = ParseSeverity(ms); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		out := events.Recent(n, min)
		if out == nil {
			out = []Event{}
		}
		_ = json.NewEncoder(w).Encode(out)
	})
}

// HealthHandler reports liveness and uptime as JSON.
func HealthHandler(started time.Time) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":   "ok",
			"uptime_s": int64(time.Since(started).Seconds()),
		})
	})
}

// MaxTraceResponse bounds how many entries a single /trace response may
// carry, regardless of the ?n= the caller asked for: the handler
// re-marshals the tail on every request, so an unbounded n would let
// one curl pin the daemon serializing the entire ring.
const MaxTraceResponse = 1024

// TraceHandler serves request tracing as JSON. Two modes:
//
//	/trace?n=N          the last N flat trace events (default 64)
//	/trace?trace=ID     every span recorded for trace ID (hierarchical)
//	/trace?spans=N      the last N raw spans
//
// Responses are capped at MaxTraceResponse entries. spans may be nil
// (span modes then return an empty list).
func TraceHandler(log *TraceLog, spans *SpanLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if s := r.URL.Query().Get("trace"); s != "" {
			var recs []SpanRecord
			if id, err := strconv.ParseUint(s, 10, 64); err == nil && spans != nil {
				recs = spans.ByTrace(id)
			}
			if len(recs) > MaxTraceResponse {
				recs = recs[:MaxTraceResponse]
			}
			_ = json.NewEncoder(w).Encode(recs)
			return
		}
		if s := r.URL.Query().Get("spans"); s != "" {
			n := clampTraceN(s, 64)
			var recs []SpanRecord
			if spans != nil {
				recs = spans.Recent(n)
			}
			_ = json.NewEncoder(w).Encode(recs)
			return
		}
		n := clampTraceN(r.URL.Query().Get("n"), 64)
		_ = json.NewEncoder(w).Encode(log.Recent(n))
	})
}

// clampTraceN parses a count query parameter, applying the default and
// the MaxTraceResponse cap.
func clampTraceN(s string, def int) int {
	n := def
	if s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	if n > MaxTraceResponse {
		n = MaxTraceResponse
	}
	return n
}

// NewMux builds the daemon observability mux: /metrics, /healthz,
// (when log is non-nil) /trace serving both flat events and spans, and
// (when events is non-nil) the /events ring.
func NewMux(snap func() Snapshot, log *TraceLog, spans *SpanLog, events *EventLog) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(snap))
	mux.Handle("/healthz", HealthHandler(time.Now()))
	if log != nil {
		mux.Handle("/trace", TraceHandler(log, spans))
	}
	if events != nil {
		mux.Handle("/events", EventsHandler(events))
	}
	return mux
}
