package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// MetricsHandler serves the snapshot produced by snap as JSON, the
// expvar-style endpoint `curl` and dashboards read. snap is called per
// request so the response is always current.
func MetricsHandler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap())
	})
}

// HealthHandler reports liveness and uptime as JSON.
func HealthHandler(started time.Time) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":   "ok",
			"uptime_s": int64(time.Since(started).Seconds()),
		})
	})
}

// TraceHandler serves the trace log tail as JSON (?n= bounds the count,
// default 64).
func TraceHandler(log *TraceLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 64
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(log.Recent(n))
	})
}

// NewMux builds the daemon observability mux: /metrics, /healthz, and
// (when log is non-nil) /trace.
func NewMux(snap func() Snapshot, log *TraceLog) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(snap))
	mux.Handle("/healthz", HealthHandler(time.Now()))
	if log != nil {
		mux.Handle("/trace", TraceHandler(log))
	}
	return mux
}
