package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestEventLogRingBounds fills a small ring past capacity and checks
// that only the newest events survive, in order, with monotonic
// sequence numbers.
func TestEventLogRingBounds(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Emitf(SevInfo, "test", "tick", "event %d", i)
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	got := l.Recent(0, SevInfo)
	if len(got) != 4 {
		t.Fatalf("Recent returned %d events, want 4", len(got))
	}
	for i, e := range got {
		want := fmt.Sprintf("event %d", 6+i)
		if e.Detail != want {
			t.Fatalf("event %d detail = %q, want %q", i, e.Detail, want)
		}
		if i > 0 && e.Seq != got[i-1].Seq+1 {
			t.Fatalf("sequence gap: %d then %d", got[i-1].Seq, e.Seq)
		}
	}
	// A smaller n takes the tail.
	tail := l.Recent(2, SevInfo)
	if len(tail) != 2 || tail[1].Detail != "event 9" {
		t.Fatalf("Recent(2) = %+v", tail)
	}
}

// TestEventLogSeverityFilter checks the minimum-severity semantics:
// the filter applies before the count cap, so asking for the last 2
// errors skips interleaved info noise.
func TestEventLogSeverityFilter(t *testing.T) {
	l := NewEventLog(64)
	for i := 0; i < 5; i++ {
		l.Emitf(SevInfo, "test", "noise", "info %d", i)
		l.Emitf(SevError, "test", "boom", "error %d", i)
	}
	l.Emit(SevWarn, "test", "wobble", "one warning")

	if n := len(l.Recent(0, SevInfo)); n != 11 {
		t.Fatalf("info+ events = %d, want 11", n)
	}
	if n := len(l.Recent(0, SevWarn)); n != 6 {
		t.Fatalf("warn+ events = %d, want 6", n)
	}
	errs := l.Recent(2, SevError)
	if len(errs) != 2 {
		t.Fatalf("Recent(2, SevError) returned %d events", len(errs))
	}
	if errs[0].Detail != "error 3" || errs[1].Detail != "error 4" {
		t.Fatalf("last two errors = %q, %q", errs[0].Detail, errs[1].Detail)
	}
}

// TestEventLogNilSafe checks that a nil ring swallows emissions and
// reads — call sites must not need nil checks.
func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Emit(SevError, "test", "x", "into the void")
	l.Emitf(SevError, "test", "x", "also %s", "fine")
	if got := l.Recent(10, SevInfo); got != nil {
		t.Fatalf("nil log Recent = %v", got)
	}
	if l.Len() != 0 {
		t.Fatalf("nil log Len = %d", l.Len())
	}
}

// TestMergeEventsOrdering interleaves two drives' tails and checks the
// merge sorts by timestamp and stamps sources.
func TestMergeEventsOrdering(t *testing.T) {
	a := []Event{
		{Seq: 1, UnixNano: 100, Subsystem: "drive", Name: "start"},
		{Seq: 2, UnixNano: 300, Subsystem: "needle", Name: "compaction"},
	}
	b := []Event{
		{Seq: 1, UnixNano: 200, Subsystem: "journal", Name: "recovery"},
		{Seq: 2, UnixNano: 300, Subsystem: "drive", Name: "start"},
	}
	out := MergeEvents([][]Event{a, b}, []string{"d1:7070", "d2:7070"})
	if len(out) != 4 {
		t.Fatalf("merged %d events, want 4", len(out))
	}
	wantOrder := []int64{100, 200, 300, 300}
	for i, e := range out {
		if e.UnixNano != wantOrder[i] {
			t.Fatalf("position %d has ts %d, want %d", i, e.UnixNano, wantOrder[i])
		}
		if e.Source == "" {
			t.Fatalf("position %d missing source: %+v", i, e)
		}
	}
	// Timestamp tie broken by source name: d1 before d2.
	if out[2].Source != "d1:7070" || out[3].Source != "d2:7070" {
		t.Fatalf("tie-break order wrong: %q then %q", out[2].Source, out[3].Source)
	}
}

// TestSeverityJSONRoundTrip checks severities serialize as names and
// deserialize from either form.
func TestSeverityJSONRoundTrip(t *testing.T) {
	b, err := json.Marshal(SevWarn)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"warn"` {
		t.Fatalf("marshaled severity = %s", b)
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"error"`), &s); err != nil || s != SevError {
		t.Fatalf("unmarshal name: %v, %v", s, err)
	}
	if err := json.Unmarshal([]byte(`1`), &s); err != nil || s != SevWarn {
		t.Fatalf("unmarshal number: %v, %v", s, err)
	}
	if err := json.Unmarshal([]byte(`"catastrophic"`), &s); err == nil {
		t.Fatal("unknown severity name did not error")
	}
}

// TestEventsHandler drives the /events HTTP endpoint: count and
// severity filters, JSON round-trip, and rejection of bad input.
func TestEventsHandler(t *testing.T) {
	l := NewEventLog(16)
	l.Emit(SevInfo, "drive", "start", "drive 1 attached")
	l.Emit(SevError, "cheops", "breaker_open", "drive 2 opened")

	srv := httptest.NewServer(EventsHandler(l))
	defer srv.Close()

	get := func(path string) ([]Event, int) {
		res, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		if res.StatusCode != 200 {
			return nil, res.StatusCode
		}
		var events []Event
		if err := json.NewDecoder(res.Body).Decode(&events); err != nil {
			t.Fatal(err)
		}
		return events, res.StatusCode
	}

	all, _ := get("/events")
	if len(all) != 2 || all[0].Name != "start" || all[1].Severity != SevError {
		t.Fatalf("all events = %+v", all)
	}
	errsOnly, _ := get("/events?min=error")
	if len(errsOnly) != 1 || errsOnly[0].Name != "breaker_open" {
		t.Fatalf("error events = %+v", errsOnly)
	}
	if _, code := get("/events?min=nonsense"); code != 400 {
		t.Fatalf("bad severity returned %d, want 400", code)
	}
	one, _ := get("/events?n=1")
	if len(one) != 1 || one[0].Name != "breaker_open" {
		t.Fatalf("n=1 tail = %+v", one)
	}
}

// TestWriteEvents smoke-checks the text renderer.
func TestWriteEvents(t *testing.T) {
	var sb strings.Builder
	WriteEvents(&sb, []Event{
		{UnixNano: 1e9, Severity: SevWarn, Subsystem: "journal", Name: "recovery", Detail: "replayed=3", Source: "d1:7070"},
	})
	out := sb.String()
	for _, want := range []string{"warn", "journal", "recovery", "replayed=3", "d1:7070"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered events missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	WriteEvents(&sb, nil)
	if !strings.Contains(sb.String(), "no events") {
		t.Fatalf("empty render = %q", sb.String())
	}
}
