package telemetry

import (
	"sync"
	"time"
)

// LockMeter instruments a lock (or a family of locks, such as every
// shard of a sharded cache) with contention telemetry: how many
// acquisitions there were, how many of those had to wait, and a
// histogram of the nanoseconds spent waiting. Layers on the drive data
// path each register one meter so a snapshot shows where requests queue
// — the lock-scheme analogue of the per-op service-time split.
//
// The fast path costs one TryLock and one atomic increment; only a
// failed TryLock (a genuinely contended acquisition) pays for a clock
// read and a histogram observation. A nil *LockMeter is valid and
// meters nothing, so packages can thread an optional meter without
// branching at every call site.
type LockMeter struct {
	acquire   *Counter   // total acquisitions
	contended *Counter   // acquisitions that had to wait
	waitNS    *Histogram // wait time of contended acquisitions, ns
}

// NewLockMeter registers <prefix>.acquire, <prefix>.contended and
// <prefix>.wait_ns in r and returns the meter. A nil registry returns a
// nil meter (metering disabled).
func NewLockMeter(r *Registry, prefix string) *LockMeter {
	if r == nil {
		return nil
	}
	return &LockMeter{
		acquire:   r.Counter(prefix + ".acquire"),
		contended: r.Counter(prefix + ".contended"),
		waitNS:    r.Histogram(prefix + ".wait_ns"),
	}
}

// Lock acquires mu, recording the acquisition and any wait.
func (m *LockMeter) Lock(mu *sync.Mutex) {
	if m == nil {
		mu.Lock()
		return
	}
	m.acquire.Inc()
	if mu.TryLock() {
		return
	}
	start := time.Now()
	mu.Lock()
	m.contended.Inc()
	m.waitNS.ObserveSince(start)
}

// LockRW acquires mu for writing, recording the acquisition and any
// wait.
func (m *LockMeter) LockRW(mu *sync.RWMutex) {
	if m == nil {
		mu.Lock()
		return
	}
	m.acquire.Inc()
	if mu.TryLock() {
		return
	}
	start := time.Now()
	mu.Lock()
	m.contended.Inc()
	m.waitNS.ObserveSince(start)
}

// RLockRW acquires mu for reading, recording the acquisition and any
// wait.
func (m *LockMeter) RLockRW(mu *sync.RWMutex) {
	if m == nil {
		mu.RLock()
		return
	}
	m.acquire.Inc()
	if mu.TryRLock() {
		return
	}
	start := time.Now()
	mu.RLock()
	m.contended.Inc()
	m.waitNS.ObserveSince(start)
}
