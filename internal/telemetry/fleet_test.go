package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// qosSnapshot builds a snapshot with one tenant's op and QoS families,
// the shape a drive running the qos plane exports.
func qosSnapshot() Snapshot {
	reg := NewRegistry()
	reg.Counter("drive.part.7.op.read.calls").Add(120)
	reg.Counter("drive.part.7.op.read.bytes_out").Add(1 << 20)
	reg.Counter("drive.part.7.qos.shed").Add(5)
	reg.Counter("drive.part.7.qos.throttled").Add(11)
	reg.Counter("drive.part.7.qos.rejected").Add(2)
	reg.Gauge("drive.part.7.qos.queue_depth").Set(3)
	reg.Counter("drive.part.9.op.write.calls").Add(40)
	return reg.Snapshot()
}

func TestTenantSnapshotCarriesGauges(t *testing.T) {
	ts := TenantSnapshot(qosSnapshot(), 7)
	if got := ts.Counters["drive.qos.shed"]; got != 5 {
		t.Fatalf("drive.qos.shed = %d, want 5", got)
	}
	if got := ts.Gauges["drive.qos.queue_depth"]; got != 3 {
		t.Fatalf("drive.qos.queue_depth = %d, want 3", got)
	}
	if _, leaked := ts.Counters["drive.op.write.calls"]; leaked {
		t.Fatal("tenant 7 snapshot leaked tenant 9's write calls")
	}
}

func TestWriteTenantTableQoSColumns(t *testing.T) {
	var buf bytes.Buffer
	WriteTenantTable(&buf, qosSnapshot(), "test scope")
	out := buf.String()
	for _, col := range []string{"shed", "thrtl", "rej", "queue"} {
		if !strings.Contains(out, col) {
			t.Fatalf("tenant table missing %q column:\n%s", col, out)
		}
	}
	var p7 string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "part.7") {
			p7 = line
		}
	}
	if p7 == "" {
		t.Fatalf("no part.7 row:\n%s", out)
	}
	f := strings.Fields(p7)
	// tenant ops errors MBin MBout p50 p99 shed thrtl rej queue
	if len(f) != 11 {
		t.Fatalf("part.7 row has %d fields, want 11: %q", len(f), p7)
	}
	if f[7] != "5" || f[8] != "11" || f[9] != "2" || f[10] != "3" {
		t.Fatalf("qos columns = %v, want shed=5 thrtl=11 rej=2 queue=3", f[7:])
	}

	// A snapshot with no per-tenant family renders nothing at all.
	buf.Reset()
	WriteTenantTable(&buf, NewRegistry().Snapshot(), "empty")
	if buf.Len() != 0 {
		t.Fatalf("tenant table for empty snapshot rendered %q", buf.String())
	}
}
