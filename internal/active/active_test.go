package active

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/mining"
	"nasd/internal/rpc"
)

var clientSeq atomic.Uint64

var testCtx = context.Background()

// newDrive builds a secure drive with the kernel registered, loads one
// object with data, and returns a Target for scanning.
func newDrive(t *testing.T, id uint64, data []byte) Target {
	t.Helper()
	master := crypt.NewRandomKey()
	dev := blockdev.NewMemDisk(4096, 16384)
	drv, err := drive.NewFormat(dev, drive.Config{ID: id, Master: master, Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	Register(drv)
	if err := drv.Store().CreatePartition(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := drv.Keys().AddPartition(1); err != nil {
		t.Fatal(err)
	}
	obj, err := drv.Store().Create(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := drv.Store().Write(1, obj, 0, data); err != nil {
		t.Fatal(err)
	}

	l := rpc.NewInProcListener("d")
	srv := drv.Serve(l)
	t.Cleanup(srv.Close)
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cli := client.New(conn, id, clientSeq.Add(1)+900)
	t.Cleanup(func() { cli.Close() })

	kid, key, err := drv.Keys().CurrentWorkingKey(1)
	if err != nil {
		t.Fatal(err)
	}
	cap := capability.Mint(capability.Public{
		DriveID: id, Partition: 1, Object: obj, ObjVer: 1,
		Rights: capability.Read | capability.GetAttr,
		Expiry: time.Now().Add(time.Hour).UnixNano(), Key: kid,
	}, key)
	return Target{Drive: cli, Cap: cap, Partition: 1, Object: obj}
}

func TestOnDriveCountMatchesClientSide(t *testing.T) {
	data := mining.Generate(mining.GenConfig{CatalogSize: 128, TotalBytes: 2*mining.ChunkSize + 4096, Seed: 21})
	want := make([]uint32, 128)
	mining.CountItems(data, want)

	tgt := newDrive(t, 1, data)
	got, err := Scan(testCtx, []Target{tgt}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("on-drive counts differ from client-side scan")
	}
}

func TestScanMergesAcrossDrives(t *testing.T) {
	d1 := mining.Generate(mining.GenConfig{CatalogSize: 64, TotalBytes: mining.ChunkSize, Seed: 22})
	d2 := mining.Generate(mining.GenConfig{CatalogSize: 64, TotalBytes: mining.ChunkSize, Seed: 23})
	want := make([]uint32, 64)
	mining.CountItems(d1, want)
	mining.CountItems(d2, want)

	got, err := Scan(testCtx, []Target{newDrive(t, 1, d1), newDrive(t, 2, d2)}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("merged counts wrong")
	}
}

func TestResultIsSmall(t *testing.T) {
	// The entire point of Active Disks: a multi-megabyte scan returns a
	// result proportional to the catalog, not the data.
	data := mining.Generate(mining.GenConfig{CatalogSize: 32, TotalBytes: 4 * mining.ChunkSize, Seed: 24})
	tgt := newDrive(t, 1, data)
	raw, err := tgt.Drive.Execute(testCtx, &tgt.Cap, tgt.Partition, tgt.Object, KernelName, encodeParams(32))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 32*4 {
		t.Fatalf("result = %d bytes, want %d", len(raw), 32*4)
	}
}

func TestScanRequiresReadRights(t *testing.T) {
	data := mining.Generate(mining.GenConfig{CatalogSize: 16, TotalBytes: 4096, Seed: 25})
	tgt := newDrive(t, 1, data)
	// Clobber the capability's private portion: execution must fail.
	tgt.Cap.Private[0] ^= 1
	if _, err := Scan(testCtx, []Target{tgt}, 16); err == nil {
		t.Fatal("kernel ran with a forged capability")
	}
}

func TestDecodeCountsRejectsBadLength(t *testing.T) {
	if _, err := DecodeCounts([]byte{1, 2, 3}); err == nil {
		t.Fatal("bad length accepted")
	}
}

func TestBadParamsRejected(t *testing.T) {
	data := mining.Generate(mining.GenConfig{CatalogSize: 16, TotalBytes: 4096, Seed: 26})
	tgt := newDrive(t, 1, data)
	if _, err := tgt.Drive.Execute(testCtx, &tgt.Cap, tgt.Partition, tgt.Object, KernelName, []byte{1}); err == nil {
		t.Fatal("truncated params accepted")
	}
}
