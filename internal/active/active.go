// Package active implements Active Disks (Section 6): shipping
// application kernels to the drives so computation happens next to the
// data and only results cross the network. The paper's example is the
// frequent-sets counting phase of the mining application, which reduces
// a 300 MB scan to a few kilobytes of counts per drive — enough to run
// the whole workload over 10 Mb/s Ethernet with a third of the
// hardware.
package active

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"

	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/drive"
	"nasd/internal/mining"
	"nasd/internal/rpc"
)

// FreqCountKernel is the on-drive frequent-sets (pass 1) kernel: it
// scans an object's transaction records and returns the item counts,
// encoded as catalog-size little-endian uint32s.
//
// Register it on a drive under KernelName before clients call Scan.
func FreqCountKernel(params []byte, data func(off uint64, n int) ([]byte, error), size uint64) ([]byte, error) {
	catalog, err := decodeParams(params)
	if err != nil {
		return nil, err
	}
	counts := make([]uint32, catalog)
	// Scan in whole chunks so records never split across reads.
	for off := uint64(0); off < size; off += mining.ChunkSize {
		n := uint64(mining.ChunkSize)
		if off+n > size {
			n = size - off
		}
		chunk, err := data(off, int(n))
		if err != nil {
			return nil, err
		}
		mining.CountItems(chunk, counts)
	}
	return encodeCounts(counts), nil
}

// KernelName is the registered name of the frequent-sets kernel.
const KernelName = "freqset-pass1"

// Register installs the kernel on a drive.
func Register(d *drive.Drive) {
	d.RegisterKernel(KernelName, FreqCountKernel)
}

func encodeParams(catalog int) []byte {
	var e rpc.Encoder
	e.U32(uint32(catalog))
	return e.Bytes()
}

func decodeParams(b []byte) (int, error) {
	d := rpc.NewDecoder(b)
	catalog := int(d.U32())
	if err := d.Err(); err != nil {
		return 0, err
	}
	if catalog <= 0 || catalog > 1<<20 {
		return 0, fmt.Errorf("active: bad catalog size %d", catalog)
	}
	return catalog, nil
}

func encodeCounts(counts []uint32) []byte {
	out := make([]byte, 4*len(counts))
	for i, c := range counts {
		binary.LittleEndian.PutUint32(out[4*i:], c)
	}
	return out
}

// DecodeCounts parses a kernel result.
func DecodeCounts(b []byte) ([]uint32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("active: result length %d not a multiple of 4", len(b))
	}
	counts := make([]uint32, len(b)/4)
	for i := range counts {
		counts[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return counts, nil
}

// Target names one object to scan on one drive.
type Target struct {
	Drive     *client.Drive
	Cap       capability.Capability
	Partition uint16
	Object    uint64
}

// Scan executes the kernel on every target in parallel and merges the
// counts at the client — the Active Disks version of the Figure 9
// workload. Only the per-drive count vectors cross the network.
func Scan(ctx context.Context, targets []Target, catalog int) ([]uint32, error) {
	params := encodeParams(catalog)
	results := make([][]uint32, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, tgt := range targets {
		wg.Add(1)
		go func(i int, tgt Target) {
			defer wg.Done()
			raw, err := tgt.Drive.Execute(ctx, &tgt.Cap, tgt.Partition, tgt.Object, KernelName, params)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = DecodeCounts(raw)
		}(i, tgt)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := make([]uint32, catalog)
	for _, counts := range results {
		for i, c := range counts {
			if i < len(merged) {
				merged[i] += c
			}
		}
	}
	return merged, nil
}
