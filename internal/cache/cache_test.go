package cache

import (
	"bytes"
	"testing"

	"nasd/internal/blockdev"
)

func fill(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }

func TestReadThroughAndHit(t *testing.T) {
	dev := blockdev.NewMemDisk(512, 64)
	if err := dev.WriteBlock(5, fill(7, 512)); err != nil {
		t.Fatal(err)
	}
	c := New(dev, 8)
	buf := make([]byte, 512)
	if err := c.ReadBlock(5, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 {
		t.Fatal("read wrong data")
	}
	if err := c.ReadBlock(5, buf); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteBehindDefersDeviceWrite(t *testing.T) {
	dev := blockdev.NewMemDisk(512, 64)
	c := New(dev, 8)
	if err := c.WriteBlock(3, fill(9, 512)); err != nil {
		t.Fatal(err)
	}
	_, w := dev.Stats()
	if w != 0 {
		t.Fatal("write-behind wrote through immediately")
	}
	if c.DirtyCount() != 1 {
		t.Fatalf("dirty = %d", c.DirtyCount())
	}
	// Read returns cached copy.
	buf := make([]byte, 512)
	if err := c.ReadBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 9 {
		t.Fatal("cached write not visible")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	_, w = dev.Stats()
	if w != 1 {
		t.Fatalf("flush wrote %d blocks", w)
	}
	if c.DirtyCount() != 0 {
		t.Fatal("dirty after flush")
	}
	// Device now has the data.
	if err := dev.ReadBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 9 {
		t.Fatal("flushed data wrong")
	}
}

func TestWriteThrough(t *testing.T) {
	dev := blockdev.NewMemDisk(512, 64)
	c := New(dev, 8)
	c.SetWriteThrough(true)
	if err := c.WriteBlock(3, fill(9, 512)); err != nil {
		t.Fatal(err)
	}
	_, w := dev.Stats()
	if w != 1 {
		t.Fatal("write-through did not reach device")
	}
	if c.DirtyCount() != 0 {
		t.Fatal("write-through left dirty block")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	dev := blockdev.NewMemDisk(512, 64)
	// One shard: the test asserts exact global LRU order.
	c := NewSharded(dev, 3, 1)
	buf := make([]byte, 512)
	for _, b := range []int64{1, 2, 3} {
		if err := c.ReadBlock(b, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 1 so 2 becomes LRU.
	if err := c.ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if err := c.ReadBlock(4, buf); err != nil {
		t.Fatal(err)
	}
	if c.Contains(2) {
		t.Fatal("LRU block 2 not evicted")
	}
	for _, b := range []int64{1, 3, 4} {
		if !c.Contains(b) {
			t.Fatalf("block %d wrongly evicted", b)
		}
	}
}

func TestShardedCapacitySplit(t *testing.T) {
	dev := blockdev.NewMemDisk(512, 64)
	c := NewSharded(dev, 10, 4)
	if c.Shards() != 4 {
		t.Fatalf("shards = %d", c.Shards())
	}
	if c.Capacity() != 10 {
		t.Fatalf("capacity = %d", c.Capacity())
	}
	// Shard count clamps to capacity so every shard can hold a block.
	if c := NewSharded(dev, 2, 16); c.Shards() != 2 {
		t.Fatalf("clamped shards = %d", c.Shards())
	}
	// Default constructor shards DefaultShards ways when capacity allows.
	if c := New(dev, 64); c.Shards() != DefaultShards {
		t.Fatalf("default shards = %d", c.Shards())
	}
}

func TestShardedEvictionIsPerShard(t *testing.T) {
	dev := blockdev.NewMemDisk(512, 64)
	c := NewSharded(dev, 4, 4) // one block per shard
	buf := make([]byte, 512)
	for _, b := range []int64{0, 1, 2, 3} {
		if err := c.ReadBlock(b, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Block 4 shares shard 0 with block 0: only block 0 may be evicted.
	if err := c.ReadBlock(4, buf); err != nil {
		t.Fatal(err)
	}
	if c.Contains(0) {
		t.Fatal("same-shard LRU block 0 not evicted")
	}
	for _, b := range []int64{1, 2, 3, 4} {
		if !c.Contains(b) {
			t.Fatalf("block %d wrongly evicted", b)
		}
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	dev := blockdev.NewMemDisk(512, 64)
	c := New(dev, 1)
	if err := c.WriteBlock(1, fill(5, 512)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if err := c.ReadBlock(2, buf); err != nil { // evicts dirty block 1
		t.Fatal(err)
	}
	if err := dev.ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 5 {
		t.Fatal("dirty block lost on eviction")
	}
	st := c.Stats()
	if st.WriteBacks != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPrefetch(t *testing.T) {
	dev := blockdev.NewMemDisk(512, 64)
	for i := int64(0); i < 8; i++ {
		if err := dev.WriteBlock(i, fill(byte(i), 512)); err != nil {
			t.Fatal(err)
		}
	}
	c := New(dev, 16)
	n := c.Prefetch([]int64{1, 2, 3})
	if n != 3 {
		t.Fatalf("prefetched %d", n)
	}
	r0, _ := dev.Stats()
	buf := make([]byte, 512)
	for _, b := range []int64{1, 2, 3} {
		if err := c.ReadBlock(b, buf); err != nil {
			t.Fatal(err)
		}
	}
	r1, _ := dev.Stats()
	if r1 != r0 {
		t.Fatal("reads after prefetch hit the device")
	}
	st := c.Stats()
	if st.Hits != 3 || st.Prefetches != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Prefetching cached blocks is a no-op.
	if n := c.Prefetch([]int64{1, 2, 3}); n != 0 {
		t.Fatalf("re-prefetch fetched %d", n)
	}
}

func TestPrefetchIgnoresBadBlocks(t *testing.T) {
	dev := blockdev.NewMemDisk(512, 64)
	dev.CorruptBlock(2)
	c := New(dev, 16)
	if n := c.Prefetch([]int64{1, 2, 3}); n != 2 {
		t.Fatalf("prefetched %d, want 2", n)
	}
}

func TestInvalidate(t *testing.T) {
	dev := blockdev.NewMemDisk(512, 64)
	c := New(dev, 8)
	if err := c.WriteBlock(1, fill(9, 512)); err != nil {
		t.Fatal(err)
	}
	c.Invalidate(1)
	if c.Contains(1) {
		t.Fatal("invalidated block still cached")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if err := dev.ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Fatal("invalidated dirty block reached device")
	}
}

func TestWriteDoesNotAliasCaller(t *testing.T) {
	dev := blockdev.NewMemDisk(512, 64)
	c := New(dev, 8)
	data := fill(1, 512)
	if err := c.WriteBlock(0, data); err != nil {
		t.Fatal(err)
	}
	data[0] = 99
	buf := make([]byte, 512)
	if err := c.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Fatal("cache aliased caller buffer")
	}
}

func TestReadErrorPropagates(t *testing.T) {
	dev := blockdev.NewMemDisk(512, 64)
	dev.CorruptBlock(4)
	c := New(dev, 8)
	buf := make([]byte, 512)
	if err := c.ReadBlock(4, buf); err == nil {
		t.Fatal("corrupt read succeeded")
	}
}

func TestCapacityOne(t *testing.T) {
	dev := blockdev.NewMemDisk(512, 64)
	c := New(dev, 1)
	buf := make([]byte, 512)
	for i := int64(0); i < 10; i++ {
		if err := c.WriteBlock(i, fill(byte(i), 512)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := dev.ReadBlock(i, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("block %d lost", i)
		}
	}
}
