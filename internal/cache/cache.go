package cache

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"nasd/internal/blockdev"
	"nasd/internal/bufpool"
	"nasd/internal/telemetry"
)

// Stats counts cache activity.
type Stats struct {
	Hits       int64
	Misses     int64
	Prefetches int64
	Evictions  int64
	WriteBacks int64
}

func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Prefetches += o.Prefetches
	s.Evictions += o.Evictions
	s.WriteBacks += o.WriteBacks
}

type entry struct {
	block int64
	data  []byte
	dirty bool
	elem  *list.Element
}

// DefaultShards is how many independently locked shards New creates
// (clamped to the capacity, so tiny caches degenerate gracefully to a
// single shard).
const DefaultShards = 16

// BlockCache is an LRU cache over a block device, sharded by block
// number so lookups of blocks on different shards never serialize:
// each shard has its own mutex, LRU list, and slice of the capacity.
// Within a shard, a miss releases the shard lock while it fills from
// the device, so a slow media read stalls only requests for the same
// block's shard map — not the whole cache — and hits proceed while
// other shards fill. Consecutive physical blocks land on consecutive
// shards, which spreads a sequential scan across every lock.
//
// In the store's lock hierarchy the cache sits below the object and
// partition locks and above the layout allocator (DESIGN.md §4): a
// shard mutex may be taken while holding those, and never the reverse.
type BlockCache struct {
	dev      blockdev.Device
	shards   []*cacheShard
	wthrough atomic.Bool
	meter    *telemetry.LockMeter
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[int64]*entry
	lru      *list.List // front = most recent
	stats    Stats
}

// New returns a cache holding up to capacity blocks of dev, sharded
// DefaultShards ways.
func New(dev blockdev.Device, capacity int) *BlockCache {
	return NewSharded(dev, capacity, DefaultShards)
}

// NewSharded returns a cache with an explicit shard count (clamped to
// [1, capacity]). One shard gives the exact global-LRU behavior of the
// unsharded design; more shards trade per-shard LRU approximation for
// lock independence.
func NewSharded(dev blockdev.Device, capacity, shards int) *BlockCache {
	if capacity < 1 {
		panic("cache: capacity must be >= 1")
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	c := &BlockCache{dev: dev, shards: make([]*cacheShard, shards)}
	for i := range c.shards {
		// Distribute capacity as evenly as possible; early shards take
		// the remainder.
		per := capacity / shards
		if i < capacity%shards {
			per++
		}
		c.shards[i] = &cacheShard{
			capacity: per,
			entries:  make(map[int64]*entry),
			lru:      list.New(),
		}
	}
	return c
}

// SetLockMeter wires contention telemetry for every shard mutex (all
// shards share the one meter). Call before concurrent use.
func (c *BlockCache) SetLockMeter(m *telemetry.LockMeter) { c.meter = m }

// shardOf maps a block to its shard. Plain modulo: physical blocks are
// allocated in runs, so neighbors go to different shards.
func (c *BlockCache) shardOf(block int64) *cacheShard {
	if block < 0 {
		block = -block
	}
	return c.shards[block%int64(len(c.shards))]
}

// Shards returns the shard count.
func (c *BlockCache) Shards() int { return len(c.shards) }

// SetWriteThrough switches the cache between write-behind (default) and
// write-through.
func (c *BlockCache) SetWriteThrough(on bool) { c.wthrough.Store(on) }

// Capacity returns the capacity in blocks.
func (c *BlockCache) Capacity() int {
	n := 0
	for _, sh := range c.shards {
		n += sh.capacity
	}
	return n
}

// Len returns the number of cached blocks.
func (c *BlockCache) Len() int {
	n := 0
	for _, sh := range c.shards {
		c.meter.Lock(&sh.mu)
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Stats returns the counters summed over every shard.
func (c *BlockCache) Stats() Stats {
	var st Stats
	for _, sh := range c.shards {
		c.meter.Lock(&sh.mu)
		st.add(sh.stats)
		sh.mu.Unlock()
	}
	return st
}

// Contains reports whether block is currently cached (does not touch
// recency).
func (c *BlockCache) Contains(block int64) bool {
	sh := c.shardOf(block)
	c.meter.Lock(&sh.mu)
	defer sh.mu.Unlock()
	_, ok := sh.entries[block]
	return ok
}

// touch must be called with the shard mutex held.
func (sh *cacheShard) touch(e *entry) { sh.lru.MoveToFront(e.elem) }

// insert adds a block, evicting as needed. Caller holds the shard
// mutex.
func (sh *cacheShard) insert(dev blockdev.Device, block int64, data []byte, dirty bool) (*entry, error) {
	for len(sh.entries) >= sh.capacity {
		if err := sh.evictOldest(dev); err != nil {
			return nil, err
		}
	}
	e := &entry{block: block, data: data, dirty: dirty}
	e.elem = sh.lru.PushFront(e)
	sh.entries[block] = e
	return e, nil
}

// evictOldest removes the shard's LRU entry, writing it back if dirty,
// and returns its pooled buffer. Caller holds the shard mutex.
func (sh *cacheShard) evictOldest(dev blockdev.Device) error {
	back := sh.lru.Back()
	if back == nil {
		return fmt.Errorf("cache: eviction with empty LRU")
	}
	e := back.Value.(*entry)
	if e.dirty {
		if err := dev.WriteBlock(e.block, e.data); err != nil {
			return err
		}
		sh.stats.WriteBacks++
	}
	sh.lru.Remove(back)
	delete(sh.entries, e.block)
	sh.stats.Evictions++
	// The device has its own copy (write-back above, or the block was
	// clean); nothing references entry memory outside the shard lock.
	bufpool.Put(e.data)
	e.data = nil
	return nil
}

// ReadBlock reads block through the cache into buf. A miss fills from
// the device with the shard unlocked; if a concurrent writer installed
// the block meanwhile, the cached (newer) contents win.
func (c *BlockCache) ReadBlock(block int64, buf []byte) error {
	return c.ReadRange(block, 0, buf)
}

// ReadRange reads len(dst) bytes starting at byte offset off within
// block, copying directly from the cached block to dst under the shard
// lock — the single copy on the cached-read path. A miss fills a
// pooled block from the device with the shard unlocked, exactly like
// ReadBlock.
func (c *BlockCache) ReadRange(block int64, off int, dst []byte) error {
	sh := c.shardOf(block)
	c.meter.Lock(&sh.mu)
	if e, ok := sh.entries[block]; ok {
		sh.touch(e)
		sh.stats.Hits++
		copy(dst, e.data[off:])
		sh.mu.Unlock()
		return nil
	}
	sh.stats.Misses++
	sh.mu.Unlock()
	data := bufpool.Get(c.dev.BlockSize())
	if err := c.dev.ReadBlock(block, data); err != nil {
		bufpool.Put(data)
		return err
	}
	c.meter.Lock(&sh.mu)
	defer sh.mu.Unlock()
	if e, ok := sh.entries[block]; ok {
		// Raced with another fill or a write; the resident entry is at
		// least as new as what we read.
		sh.touch(e)
		copy(dst, e.data[off:])
		bufpool.Put(data)
		return nil
	}
	if _, err := sh.insert(c.dev, block, data, false); err != nil {
		bufpool.Put(data)
		return err
	}
	copy(dst, data[off:])
	return nil
}

// WriteBlock writes buf to block through the cache. In write-behind
// mode the device is updated lazily; in write-through mode immediately.
// The cached copy lives in pooled memory owned by the cache; buf is
// never retained.
func (c *BlockCache) WriteBlock(block int64, buf []byte) error {
	wthrough := c.wthrough.Load()
	sh := c.shardOf(block)
	c.meter.Lock(&sh.mu)
	defer sh.mu.Unlock()
	if e, ok := sh.entries[block]; ok {
		if len(e.data) == len(buf) {
			copy(e.data, buf)
		} else {
			bufpool.Put(e.data)
			e.data = bufpool.Get(len(buf))
			copy(e.data, buf)
		}
		e.dirty = !wthrough
		sh.touch(e)
	} else {
		data := bufpool.Get(len(buf))
		copy(data, buf)
		if _, err := sh.insert(c.dev, block, data, !wthrough); err != nil {
			bufpool.Put(data)
			return err
		}
	}
	if wthrough {
		return c.dev.WriteBlock(block, buf)
	}
	return nil
}

// Prefetch loads blocks into the cache if absent. It is the mechanism
// the object layer uses for sequential readahead. Errors on individual
// blocks are ignored (prefetch is advisory); the count of blocks
// actually fetched is returned. Like ReadBlock, fills happen with the
// shard unlocked.
func (c *BlockCache) Prefetch(blocks []int64) int {
	n := 0
	for _, b := range blocks {
		sh := c.shardOf(b)
		c.meter.Lock(&sh.mu)
		_, ok := sh.entries[b]
		sh.mu.Unlock()
		if ok {
			continue
		}
		data := bufpool.Get(c.dev.BlockSize())
		if err := c.dev.ReadBlock(b, data); err != nil {
			bufpool.Put(data)
			continue
		}
		c.meter.Lock(&sh.mu)
		if _, ok := sh.entries[b]; !ok {
			if _, err := sh.insert(c.dev, b, data, false); err != nil {
				sh.mu.Unlock()
				bufpool.Put(data)
				break
			}
			sh.stats.Prefetches++
			n++
		} else {
			bufpool.Put(data)
		}
		sh.mu.Unlock()
	}
	return n
}

// Invalidate drops a block from the cache without writing it back.
// Use when the block has been freed.
func (c *BlockCache) Invalidate(block int64) {
	sh := c.shardOf(block)
	c.meter.Lock(&sh.mu)
	defer sh.mu.Unlock()
	if e, ok := sh.entries[block]; ok {
		sh.lru.Remove(e.elem)
		delete(sh.entries, block)
		bufpool.Put(e.data)
		e.data = nil
	}
}

// Flush writes every dirty block back to the device and flushes it.
func (c *BlockCache) Flush() error {
	for _, sh := range c.shards {
		c.meter.Lock(&sh.mu)
		for _, e := range sh.entries {
			if e.dirty {
				if err := c.dev.WriteBlock(e.block, e.data); err != nil {
					sh.mu.Unlock()
					return err
				}
				e.dirty = false
				sh.stats.WriteBacks++
			}
		}
		sh.mu.Unlock()
	}
	return c.dev.Flush()
}

// DirtyCount returns the number of dirty cached blocks.
func (c *BlockCache) DirtyCount() int {
	n := 0
	for _, sh := range c.shards {
		c.meter.Lock(&sh.mu)
		for _, e := range sh.entries {
			if e.dirty {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}
