package cache

import (
	"container/list"
	"fmt"
	"sync"

	"nasd/internal/blockdev"
)

// Stats counts cache activity.
type Stats struct {
	Hits       int64
	Misses     int64
	Prefetches int64
	Evictions  int64
	WriteBacks int64
}

type entry struct {
	block int64
	data  []byte
	dirty bool
	elem  *list.Element
}

// BlockCache is an LRU cache over a block device.
type BlockCache struct {
	mu       sync.Mutex
	dev      blockdev.Device
	capacity int
	entries  map[int64]*entry
	lru      *list.List // front = most recent
	stats    Stats
	wthrough bool
}

// New returns a cache holding up to capacity blocks of dev.
func New(dev blockdev.Device, capacity int) *BlockCache {
	if capacity < 1 {
		panic("cache: capacity must be >= 1")
	}
	return &BlockCache{
		dev:      dev,
		capacity: capacity,
		entries:  make(map[int64]*entry),
		lru:      list.New(),
	}
}

// SetWriteThrough switches the cache between write-behind (default) and
// write-through.
func (c *BlockCache) SetWriteThrough(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wthrough = on
}

// Capacity returns the capacity in blocks.
func (c *BlockCache) Capacity() int { return c.capacity }

// Len returns the number of cached blocks.
func (c *BlockCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a copy of the counters.
func (c *BlockCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Contains reports whether block is currently cached (does not touch
// recency).
func (c *BlockCache) Contains(block int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[block]
	return ok
}

// touch must be called with mu held.
func (c *BlockCache) touch(e *entry) { c.lru.MoveToFront(e.elem) }

// insert adds a block, evicting as needed. Caller holds mu.
func (c *BlockCache) insert(block int64, data []byte, dirty bool) (*entry, error) {
	for len(c.entries) >= c.capacity {
		if err := c.evictOldest(); err != nil {
			return nil, err
		}
	}
	e := &entry{block: block, data: data, dirty: dirty}
	e.elem = c.lru.PushFront(e)
	c.entries[block] = e
	return e, nil
}

// evictOldest removes the LRU entry, writing it back if dirty. Caller
// holds mu.
func (c *BlockCache) evictOldest() error {
	back := c.lru.Back()
	if back == nil {
		return fmt.Errorf("cache: eviction with empty LRU")
	}
	e := back.Value.(*entry)
	if e.dirty {
		if err := c.dev.WriteBlock(e.block, e.data); err != nil {
			return err
		}
		c.stats.WriteBacks++
	}
	c.lru.Remove(back)
	delete(c.entries, e.block)
	c.stats.Evictions++
	return nil
}

// ReadBlock reads block through the cache into buf.
func (c *BlockCache) ReadBlock(block int64, buf []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[block]; ok {
		c.touch(e)
		c.stats.Hits++
		copy(buf, e.data)
		return nil
	}
	c.stats.Misses++
	data := make([]byte, c.dev.BlockSize())
	if err := c.dev.ReadBlock(block, data); err != nil {
		return err
	}
	if _, err := c.insert(block, data, false); err != nil {
		return err
	}
	copy(buf, data)
	return nil
}

// WriteBlock writes buf to block through the cache. In write-behind
// mode the device is updated lazily; in write-through mode immediately.
func (c *BlockCache) WriteBlock(block int64, buf []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	data := make([]byte, len(buf))
	copy(data, buf)
	if e, ok := c.entries[block]; ok {
		e.data = data
		e.dirty = !c.wthrough
		c.touch(e)
	} else {
		if _, err := c.insert(block, data, !c.wthrough); err != nil {
			return err
		}
	}
	if c.wthrough {
		return c.dev.WriteBlock(block, buf)
	}
	return nil
}

// Prefetch loads blocks into the cache if absent. It is the mechanism
// the object layer uses for sequential readahead. Errors on individual
// blocks are ignored (prefetch is advisory); the count of blocks
// actually fetched is returned.
func (c *BlockCache) Prefetch(blocks []int64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, b := range blocks {
		if _, ok := c.entries[b]; ok {
			continue
		}
		data := make([]byte, c.dev.BlockSize())
		if err := c.dev.ReadBlock(b, data); err != nil {
			continue
		}
		if _, err := c.insert(b, data, false); err != nil {
			break
		}
		c.stats.Prefetches++
		n++
	}
	return n
}

// Invalidate drops a block from the cache without writing it back.
// Use when the block has been freed.
func (c *BlockCache) Invalidate(block int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[block]; ok {
		c.lru.Remove(e.elem)
		delete(c.entries, block)
	}
}

// Flush writes every dirty block back to the device and flushes it.
func (c *BlockCache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if e.dirty {
			if err := c.dev.WriteBlock(e.block, e.data); err != nil {
				return err
			}
			e.dirty = false
			c.stats.WriteBacks++
		}
	}
	return c.dev.Flush()
}

// DirtyCount returns the number of dirty cached blocks.
func (c *BlockCache) DirtyCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.entries {
		if e.dirty {
			n++
		}
	}
	return n
}
