// Package cache implements the NASD object system's buffer cache: an
// LRU block cache with write-behind and prefetch support. The paper's
// prototype object system (Section 4.2) implemented "its own internal
// object access, cache, and disk space management modules"; this is
// the cache module.
//
// The cache stores copies of device blocks keyed by physical block
// number. Reads hit the cache; misses fetch from the backing device.
// Writes are write-behind by default (dirty blocks are flushed on
// eviction or Flush), matching the prototype's "NASD has write-behind
// (fully) enabled" configuration; write-through can be selected for
// metadata.
//
// Stats() exposes hit/miss/prefetch/eviction/writeback counters; the
// drive republishes them as the drive.cache.* pull gauges of DESIGN.md
// §5, which is how the Figure 6 warm- vs cold-read regimes are told
// apart in measured runs.
package cache
