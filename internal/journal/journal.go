package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"nasd/internal/blockdev"
	"nasd/internal/telemetry"
)

// Record kinds. The journal itself is payload-agnostic; these constants
// name the metadata intents the store writes ahead of its in-place
// updates (DESIGN.md §7).
type Kind uint8

const (
	// KindRefUpdate carries a batch of {block, refcount} pairs from the
	// layout allocator (alloc, free, incref).
	KindRefUpdate Kind = 1
	// KindOnode carries an onode index plus the full encoded onode
	// image about to be written in place.
	KindOnode Kind = 2
	// KindPartTable carries the full encoded partition table about to
	// be written into the control object.
	KindPartTable Kind = 3
	// KindNeedleSeg carries a partition id plus the needle engine's
	// encoded segment table for that partition's log.
	KindNeedleSeg Kind = 4
)

// Record is one committed journal entry as returned by Open for replay.
type Record struct {
	Kind    Kind
	LSN     uint64
	Payload []byte
}

// Errors.
var (
	// ErrFull means the active journal half cannot hold the record;
	// the caller should make applied effects durable, Checkpoint, and
	// retry (or fall back to a direct durable write).
	ErrFull = errors.New("journal: full")
	// ErrBadHeader means the journal region header failed validation.
	ErrBadHeader = errors.New("journal: bad header")
	// ErrTooSmall means the region cannot hold a header plus two halves.
	ErrTooSmall = errors.New("journal: region too small")
)

const (
	headerMagic = 0x4e4a4e4c // "NJNL"
	recMagic    = 0x4e4a5243 // "NJRC"
	version     = 1

	// record framing: magic u32 | crc u32 | len u32 | gen u64 | lsn u64 | kind u8
	recHeaderSize = 4 + 4 + 4 + 8 + 8 + 1

	// header block layout: magic u32 | version u32 | gen u64 | crc u32
	headerSize = 4 + 4 + 8 + 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Journal is a redo write-ahead log over a reserved region of a block
// device. Callers Append intent records, Commit to make them durable
// (group commit: one flush covers every record appended since the last
// commit), apply the in-place update, then mark the record Applied.
// Checkpoint compacts the log by rewriting only the still-unapplied
// records into the inactive half of the region, so it always succeeds
// regardless of how full the active half is.
//
// All methods are safe for concurrent use. The journal takes no locks
// other than its own and makes no callbacks, so it can be invoked from
// under any store lock.
type Journal struct {
	mu      sync.Mutex
	dev     blockdev.Device
	start   int64 // first block of the region
	nblocks int64 // region length in blocks
	bs      int
	half    int64 // blocks per half

	gen      uint64 // current generation; parity selects the active half
	nextLSN  uint64
	writeOff int64 // next free block within the active half

	pending      []*Record // appended, not yet committed
	pendingBytes int
	committedLSN uint64
	outstanding  []*Record // committed, not yet applied (nil slots = applied)
	outBytes     int

	cAppends, cCommits, cBytes, cCheckpoints, cTornTails, cReplays *telemetry.Counter
}

// Stats reports what Open recovered from the region.
type Stats struct {
	// Replayed is the number of committed records returned for replay.
	Replayed int
	// TornTails is the number of torn (partially persisted) record
	// batches discarded at the stream tail.
	TornTails int
}

func blocksFor(bytes int, bs int) int64 {
	return int64((bytes + bs - 1) / bs)
}

// Format initialises the journal region: a fresh header and an empty
// record stream. The caller is responsible for flushing the device.
func Format(dev blockdev.Device, start, nblocks int64) error {
	if nblocks < 5 {
		return ErrTooSmall
	}
	bs := dev.BlockSize()
	if bs < headerSize || bs < recHeaderSize+1 {
		return ErrTooSmall
	}
	buf := make([]byte, bs)
	binary.LittleEndian.PutUint32(buf[0:], headerMagic)
	binary.LittleEndian.PutUint32(buf[4:], version)
	binary.LittleEndian.PutUint64(buf[8:], 2) // gen 2: even → first half active
	binary.LittleEndian.PutUint32(buf[16:], crc32.Checksum(buf[:16], crcTable))
	return dev.WriteBlock(start, buf)
}

// Open validates the region header, scans the active half for committed
// records, and returns the journal plus the records (in LSN order) for
// the caller to replay. Recovered records start out in the outstanding
// set; the caller must mark them Applied (directly or via Reset) once
// their effects are durable.
func Open(dev blockdev.Device, start, nblocks int64, reg *telemetry.Registry) (*Journal, []Record, Stats, error) {
	if nblocks < 5 {
		return nil, nil, Stats{}, ErrTooSmall
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	j := &Journal{
		dev:     dev,
		start:   start,
		nblocks: nblocks,
		bs:      dev.BlockSize(),
		half:    (nblocks - 1) / 2,

		cAppends:     reg.Counter("journal.appends"),
		cCommits:     reg.Counter("journal.commits"),
		cBytes:       reg.Counter("journal.bytes"),
		cCheckpoints: reg.Counter("journal.checkpoints"),
		cTornTails:   reg.Counter("journal.torn_tails"),
		cReplays:     reg.Counter("journal.replays"),
	}
	buf := make([]byte, j.bs)
	if err := dev.ReadBlock(start, buf); err != nil {
		return nil, nil, Stats{}, err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != headerMagic ||
		binary.LittleEndian.Uint32(buf[4:]) != version ||
		binary.LittleEndian.Uint32(buf[16:]) != crc32.Checksum(buf[:16], crcTable) {
		return nil, nil, Stats{}, ErrBadHeader
	}
	j.gen = binary.LittleEndian.Uint64(buf[8:])

	recs, torn, err := j.scan()
	if err != nil {
		return nil, nil, Stats{}, err
	}
	out := make([]Record, len(recs))
	for i, r := range recs {
		out[i] = *r
		j.outstanding = append(j.outstanding, r)
		j.outBytes += recHeaderSize + len(r.Payload)
		if r.LSN >= j.nextLSN {
			j.nextLSN = r.LSN + 1
		}
		j.committedLSN = r.LSN
	}
	if j.nextLSN == 0 {
		j.nextLSN = 1
	}
	j.cReplays.Add(uint64(len(out)))
	j.cTornTails.Add(uint64(torn))
	return j, out, Stats{Replayed: len(out), TornTails: torn}, nil
}

// activeBase returns the first block (relative to start) of the half
// selected by the given generation's parity.
func (j *Journal) activeBase(gen uint64) int64 {
	if gen%2 == 0 {
		return 1
	}
	return 1 + j.half
}

// scan walks the active half, parsing committed records of the current
// generation. It stops cleanly at stale (prior-generation) data or
// zeroed padding, and counts a torn tail when it finds a current-
// generation record that fails its CRC or framing — the signature of a
// commit batch caught mid-flush. The half is read whole (it is a few
// MB at most), which keeps the parser a flat byte walk.
func (j *Journal) scan() ([]*Record, int, error) {
	base := j.activeBase(j.gen)
	raw := make([]byte, j.half*int64(j.bs))
	for blk := int64(0); blk < j.half; blk++ {
		if err := j.dev.ReadBlock(j.start+base+blk, raw[blk*int64(j.bs):(blk+1)*int64(j.bs)]); err != nil {
			return nil, 0, err
		}
	}

	var recs []*Record
	torn := 0
	var lastLSN uint64
	off := 0
	for off+recHeaderSize <= len(raw) {
		if binary.LittleEndian.Uint32(raw[off:]) != recMagic {
			if off%j.bs != 0 {
				// Padding after the last record of a batch: batches
				// begin on block boundaries, so try the next one.
				off = (off/j.bs + 1) * j.bs
				continue
			}
			// Block boundary without a record: end of stream.
			break
		}
		crc := binary.LittleEndian.Uint32(raw[off+4:])
		plen := int(binary.LittleEndian.Uint32(raw[off+8:]))
		gen := binary.LittleEndian.Uint64(raw[off+12:])
		lsn := binary.LittleEndian.Uint64(raw[off+20:])
		kind := Kind(raw[off+28])
		if gen != j.gen {
			// A record from a previous pass over this half: the stream
			// ended at the last good record.
			break
		}
		end := off + recHeaderSize + plen
		if plen < 0 || end > len(raw) {
			torn++
			break
		}
		if crc32.Checksum(raw[off+8:end], crcTable) != crc {
			torn++
			break
		}
		if lsn <= lastLSN && lastLSN != 0 {
			torn++
			break
		}
		lastLSN = lsn
		payload := make([]byte, plen)
		copy(payload, raw[off+recHeaderSize:end])
		recs = append(recs, &Record{Kind: kind, LSN: lsn, Payload: payload})
		off = end
	}
	// Batches always begin on a fresh block, so the next write goes to
	// the block after the last byte of committed records.
	j.writeOff = blocksFor(off, j.bs)
	if j.writeOff > j.half {
		j.writeOff = j.half
	}
	return recs, torn, nil
}

// Append buffers an intent record and returns its LSN. The record is
// not durable until Commit. ErrFull means the active half cannot hold
// the outstanding set plus this record; make applied effects durable,
// Checkpoint, and retry.
func (j *Journal) Append(kind Kind, payload []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	size := recHeaderSize + len(payload)
	// Worst case after a future checkpoint, the half must hold every
	// unapplied byte; leave one block of slack per batch for padding.
	need := j.writeOff + blocksFor(j.pendingBytes+size, j.bs) + 1
	if need > j.half || blocksFor(j.outBytes+j.pendingBytes+size, j.bs)+2 > j.half {
		return 0, ErrFull
	}
	lsn := j.nextLSN
	j.nextLSN++
	p := make([]byte, len(payload))
	copy(p, payload)
	j.pending = append(j.pending, &Record{Kind: kind, LSN: lsn, Payload: p})
	j.pendingBytes += size
	j.cAppends.Inc()
	return lsn, nil
}

// Commit makes every record appended so far durable: it writes the
// pending batch to the active half starting at a fresh block and
// flushes the device. If upTo is already committed (another caller's
// commit covered it) it returns immediately — this is the group-commit
// fast path. A batch never rewrites a block used by an earlier batch,
// so a torn commit cannot damage previously committed records.
func (j *Journal) Commit(upTo uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if upTo <= j.committedLSN || len(j.pending) == 0 {
		return nil
	}
	if err := j.writeBatchLocked(j.gen, j.pending); err != nil {
		return err
	}
	if err := j.dev.Flush(); err != nil {
		return err
	}
	for _, r := range j.pending {
		j.outstanding = append(j.outstanding, r)
		j.outBytes += recHeaderSize + len(r.Payload)
		j.committedLSN = r.LSN
	}
	j.cBytes.Add(uint64(j.pendingBytes))
	j.pending = j.pending[:0]
	j.pendingBytes = 0
	j.cCommits.Inc()
	return nil
}

// writeBatchLocked serialises recs with the given generation into the
// active half at writeOff and advances writeOff. It does not flush.
func (j *Journal) writeBatchLocked(gen uint64, recs []*Record) error {
	total := 0
	for _, r := range recs {
		total += recHeaderSize + len(r.Payload)
	}
	nb := blocksFor(total, j.bs)
	if j.writeOff+nb > j.half {
		return ErrFull
	}
	raw := make([]byte, nb*int64(j.bs))
	off := 0
	for _, r := range recs {
		binary.LittleEndian.PutUint32(raw[off:], recMagic)
		binary.LittleEndian.PutUint32(raw[off+8:], uint32(len(r.Payload)))
		binary.LittleEndian.PutUint64(raw[off+12:], gen)
		binary.LittleEndian.PutUint64(raw[off+20:], r.LSN)
		raw[off+28] = byte(r.Kind)
		copy(raw[off+recHeaderSize:], r.Payload)
		end := off + recHeaderSize + len(r.Payload)
		binary.LittleEndian.PutUint32(raw[off+4:], crc32.Checksum(raw[off+8:end], crcTable))
		off = end
	}
	base := j.activeBase(gen)
	for i := int64(0); i < nb; i++ {
		if err := j.dev.WriteBlock(j.start+base+j.writeOff+i, raw[i*int64(j.bs):(i+1)*int64(j.bs)]); err != nil {
			return err
		}
	}
	j.writeOff += nb
	return nil
}

// Applied marks a committed record's in-place effect as issued to the
// device. The record stays durable in the journal until the next
// Checkpoint, which must only run once issued effects have been made
// durable by a device flush.
func (j *Journal) Applied(lsn uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i, r := range j.outstanding {
		if r != nil && r.LSN == lsn {
			j.outBytes -= recHeaderSize + len(r.Payload)
			j.outstanding[i] = nil
			break
		}
	}
}

// Checkpoint compacts the journal: still-unapplied records are
// rewritten (with their original LSNs) into the inactive half under the
// next generation, then the header flips to that generation. The old
// half stays intact until the new header is durable, so a crash at any
// point recovers a complete record set. Callers must flush the device
// before checkpointing so that every Applied effect is durable.
func (j *Journal) Checkpoint() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.checkpointLocked()
}

func (j *Journal) checkpointLocked() error {
	live := j.outstanding[:0:0]
	bytes := 0
	for _, r := range j.outstanding {
		if r != nil {
			live = append(live, r)
			bytes += recHeaderSize + len(r.Payload)
		}
	}
	newGen := j.gen + 1
	oldOff := j.writeOff
	j.writeOff = 0
	if len(live) > 0 {
		// Writing into the inactive half: the current header still
		// points at the old half, so a crash here loses nothing.
		if err := j.writeBatchLocked(newGen, live); err != nil {
			j.writeOff = oldOff
			return err
		}
		if err := j.dev.Flush(); err != nil {
			j.writeOff = oldOff
			return err
		}
	}
	buf := make([]byte, j.bs)
	binary.LittleEndian.PutUint32(buf[0:], headerMagic)
	binary.LittleEndian.PutUint32(buf[4:], version)
	binary.LittleEndian.PutUint64(buf[8:], newGen)
	binary.LittleEndian.PutUint32(buf[16:], crc32.Checksum(buf[:16], crcTable))
	if err := j.dev.WriteBlock(j.start, buf); err != nil {
		j.writeOff = oldOff
		return err
	}
	if err := j.dev.Flush(); err != nil {
		j.writeOff = oldOff
		return err
	}
	j.gen = newGen
	j.outstanding = live
	j.outBytes = bytes
	j.cCheckpoints.Inc()
	return nil
}

// Reset discards the outstanding set and starts a fresh generation. It
// is called at the end of mount-time recovery, after every replayed
// effect has been flushed to the device.
func (j *Journal) Reset() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.outstanding = nil
	j.outBytes = 0
	return j.checkpointLocked()
}

// Outstanding reports how many committed records are awaiting Applied
// (for tests and invariant checks).
func (j *Journal) Outstanding() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, r := range j.outstanding {
		if r != nil {
			n++
		}
	}
	return n
}

// Capacity returns the usable byte capacity of one journal half.
func (j *Journal) Capacity() int64 { return j.half * int64(j.bs) }

// EncodeRefUpdate packs {block, ref} pairs into a KindRefUpdate
// payload.
func EncodeRefUpdate(blocks []int64, refs []uint16) []byte {
	if len(blocks) != len(refs) {
		panic("journal: blocks/refs length mismatch")
	}
	buf := make([]byte, 4+10*len(blocks))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(blocks)))
	off := 4
	for i := range blocks {
		binary.LittleEndian.PutUint64(buf[off:], uint64(blocks[i]))
		binary.LittleEndian.PutUint16(buf[off+8:], refs[i])
		off += 10
	}
	return buf
}

// DecodeRefUpdate unpacks a KindRefUpdate payload.
func DecodeRefUpdate(p []byte) (blocks []int64, refs []uint16, err error) {
	if len(p) < 4 {
		return nil, nil, fmt.Errorf("journal: short refupdate payload")
	}
	n := int(binary.LittleEndian.Uint32(p[0:]))
	if len(p) < 4+10*n {
		return nil, nil, fmt.Errorf("journal: truncated refupdate payload")
	}
	blocks = make([]int64, n)
	refs = make([]uint16, n)
	off := 4
	for i := 0; i < n; i++ {
		blocks[i] = int64(binary.LittleEndian.Uint64(p[off:]))
		refs[i] = binary.LittleEndian.Uint16(p[off+8:])
		off += 10
	}
	return blocks, refs, nil
}

// EncodeOnode packs an onode index plus its encoded image into a
// KindOnode payload.
func EncodeOnode(idx uint32, image []byte) []byte {
	buf := make([]byte, 4+len(image))
	binary.LittleEndian.PutUint32(buf[0:], idx)
	copy(buf[4:], image)
	return buf
}

// DecodeOnode unpacks a KindOnode payload.
func DecodeOnode(p []byte) (idx uint32, image []byte, err error) {
	if len(p) < 4 {
		return 0, nil, fmt.Errorf("journal: short onode payload")
	}
	return binary.LittleEndian.Uint32(p[0:]), p[4:], nil
}

// EncodeNeedleSeg packs a partition id plus the segment-table bytes
// into a KindNeedleSeg payload.
func EncodeNeedleSeg(part uint16, data []byte) []byte {
	buf := make([]byte, 2+len(data))
	binary.LittleEndian.PutUint16(buf[0:], part)
	copy(buf[2:], data)
	return buf
}

// DecodeNeedleSeg unpacks a KindNeedleSeg payload.
func DecodeNeedleSeg(p []byte) (part uint16, data []byte, err error) {
	if len(p) < 2 {
		return 0, nil, fmt.Errorf("journal: short needleseg payload")
	}
	return binary.LittleEndian.Uint16(p[0:]), p[2:], nil
}
