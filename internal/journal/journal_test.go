package journal

import (
	"bytes"
	"fmt"
	"testing"

	"nasd/internal/blockdev"
)

func newJournal(t *testing.T, blocks int64) (*blockdev.MemDisk, *Journal) {
	t.Helper()
	dev := blockdev.NewMemDisk(512, blocks+10)
	if err := Format(dev, 3, blocks); err != nil {
		t.Fatalf("Format: %v", err)
	}
	j, recs, _, err := Open(dev, 3, blocks, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal recovered %d records", len(recs))
	}
	return dev, j
}

func TestAppendCommitRecover(t *testing.T) {
	dev, j := newJournal(t, 64)
	var lsns []uint64
	for i := 0; i < 5; i++ {
		lsn, err := j.Append(KindOnode, EncodeOnode(uint32(i), bytes.Repeat([]byte{byte(i)}, 100)))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		lsns = append(lsns, lsn)
	}
	if err := j.Commit(lsns[len(lsns)-1]); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	j2, recs, st, err := Open(dev, 3, 64, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if st.TornTails != 0 {
		t.Fatalf("torn tails on clean journal: %d", st.TornTails)
	}
	if len(recs) != 5 {
		t.Fatalf("recovered %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.Kind != KindOnode || r.LSN != lsns[i] {
			t.Fatalf("record %d = {%d %d}, want {%d %d}", i, r.Kind, r.LSN, KindOnode, lsns[i])
		}
		idx, img, err := DecodeOnode(r.Payload)
		if err != nil || idx != uint32(i) || len(img) != 100 || img[0] != byte(i) {
			t.Fatalf("record %d payload mismatch (err=%v idx=%d)", i, err, idx)
		}
	}
	if j2.Outstanding() != 5 {
		t.Fatalf("outstanding = %d, want 5", j2.Outstanding())
	}
}

func TestUncommittedNotRecovered(t *testing.T) {
	dev, j := newJournal(t, 64)
	if _, err := j.Append(KindPartTable, []byte("never committed")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	_, recs, _, err := Open(dev, 3, 64, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("recovered %d uncommitted records", len(recs))
	}
}

func TestGroupCommit(t *testing.T) {
	_, j := newJournal(t, 64)
	a, _ := j.Append(KindPartTable, []byte("a"))
	b, _ := j.Append(KindPartTable, []byte("b"))
	if err := j.Commit(b); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// a was covered by b's commit: this must be a no-op fast path.
	if err := j.Commit(a); err != nil {
		t.Fatalf("Commit(a): %v", err)
	}
}

func TestCheckpointKeepsUnapplied(t *testing.T) {
	dev, j := newJournal(t, 64)
	applied, _ := j.Append(KindPartTable, []byte("applied"))
	kept, _ := j.Append(KindNeedleSeg, EncodeNeedleSeg(7, []byte("kept")))
	if err := j.Commit(kept); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	j.Applied(applied)
	if err := j.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	_, recs, _, err := Open(dev, 3, 64, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d records after checkpoint, want 1", len(recs))
	}
	if recs[0].LSN != kept {
		t.Fatalf("kept LSN %d, want %d (original LSN must survive checkpoint)", recs[0].LSN, kept)
	}
	part, data, err := DecodeNeedleSeg(recs[0].Payload)
	if err != nil || part != 7 || string(data) != "kept" {
		t.Fatalf("kept payload mismatch: part=%d data=%q err=%v", part, data, err)
	}
}

func TestLSNsSurviveCheckpointAndGrow(t *testing.T) {
	_, j := newJournal(t, 64)
	a, _ := j.Append(KindPartTable, []byte("a"))
	j.Commit(a)
	if err := j.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	b, _ := j.Append(KindPartTable, []byte("b"))
	if b <= a {
		t.Fatalf("LSN went backwards after checkpoint: %d <= %d", b, a)
	}
}

func TestFullThenCheckpointFrees(t *testing.T) {
	_, j := newJournal(t, 16) // tiny: half = 7 blocks of 512 B
	payload := bytes.Repeat([]byte{0xAA}, 400)
	var last uint64
	filled := 0
	for i := 0; i < 100; i++ {
		lsn, err := j.Append(KindOnode, payload)
		if err == ErrFull {
			break
		}
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		last = lsn
		filled++
	}
	if filled == 0 || filled == 100 {
		t.Fatalf("expected to fill the journal, appended %d", filled)
	}
	if err := j.Commit(last); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Apply everything, checkpoint, and the journal must accept again.
	for lsn := uint64(1); lsn <= last; lsn++ {
		j.Applied(lsn)
	}
	if err := j.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if _, err := j.Append(KindOnode, payload); err != nil {
		t.Fatalf("Append after checkpoint: %v", err)
	}
}

func TestTornTailDetected(t *testing.T) {
	dev, j := newJournal(t, 64)
	lsn, _ := j.Append(KindOnode, bytes.Repeat([]byte{1}, 64))
	if err := j.Commit(lsn); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	lsn2, _ := j.Append(KindOnode, bytes.Repeat([]byte{2}, 64))
	if err := j.Commit(lsn2); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Corrupt a byte inside the second batch's payload: current
	// generation, bad CRC — the signature of a torn commit.
	buf := make([]byte, 512)
	if err := dev.ReadBlock(3+1+1, buf); err != nil { // header at 3, half base +1, batch 2 at +1
		t.Fatalf("read: %v", err)
	}
	buf[40] ^= 0xFF
	if err := dev.WriteBlock(3+1+1, buf); err != nil {
		t.Fatalf("write: %v", err)
	}

	_, recs, st, err := Open(dev, 3, 64, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recs) != 1 || recs[0].LSN != lsn {
		t.Fatalf("recovered %d records (want just the first batch)", len(recs))
	}
	if st.TornTails != 1 {
		t.Fatalf("torn tails = %d, want 1", st.TornTails)
	}
}

func TestResetDiscardsEverything(t *testing.T) {
	dev, j := newJournal(t, 64)
	lsn, _ := j.Append(KindPartTable, []byte("x"))
	j.Commit(lsn)
	if err := j.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	_, recs, _, err := Open(dev, 3, 64, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("recovered %d records after Reset", len(recs))
	}
}

func TestLargeRecordSpansBlocks(t *testing.T) {
	dev, j := newJournal(t, 64)
	big := make([]byte, 3*512+17)
	for i := range big {
		big[i] = byte(i * 7)
	}
	lsn, err := j.Append(KindPartTable, big)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Commit(lsn); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	_, recs, _, err := Open(dev, 3, 64, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recs) != 1 || !bytes.Equal(recs[0].Payload, big) {
		t.Fatalf("multi-block record did not round-trip")
	}
}

func TestRefUpdateCodec(t *testing.T) {
	blocks := []int64{5, 99, 1 << 40}
	refs := []uint16{1, 0, 7}
	b2, r2, err := DecodeRefUpdate(EncodeRefUpdate(blocks, refs))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i := range blocks {
		if b2[i] != blocks[i] || r2[i] != refs[i] {
			t.Fatalf("pair %d: got {%d %d} want {%d %d}", i, b2[i], r2[i], blocks[i], refs[i])
		}
	}
	if _, _, err := DecodeRefUpdate([]byte{1, 2}); err == nil {
		t.Fatal("short payload must error")
	}
}

func TestConcurrentAppendCommit(t *testing.T) {
	_, j := newJournal(t, 1024)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				lsn, err := j.Append(KindOnode, []byte(fmt.Sprintf("g%d-%d", g, i)))
				if err != nil {
					done <- err
					return
				}
				if err := j.Commit(lsn); err != nil {
					done <- err
					return
				}
				j.Applied(lsn)
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	if err := j.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if j.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after all applied", j.Outstanding())
	}
}
