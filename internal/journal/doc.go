// Package journal is the drive's write-ahead metadata log (DESIGN.md
// §7). Layout mutations — allocator refcount changes, onode images,
// the partition table, needle segment tables — are appended as CRC-32C
// framed intent records with a monotonic LSN and made durable by a
// group-committed device flush BEFORE the corresponding in-place
// metadata write is issued. After a crash, mount-time recovery replays
// the committed records (replay is idempotent: every record carries
// the full new value, not a delta), discards torn tails, and the store
// verifies its invariants before serving.
//
// On disk the journal owns a reserved region of the drive's block
// device: one header block (magic, version, generation, CRC) followed
// by two equal halves. The generation's parity selects the active
// half. Records are written in block-aligned batches — a batch never
// rewrites a block used by an earlier batch — so a torn batch can
// never damage previously committed records. Records from an earlier
// pass over the same half carry a stale generation and terminate the
// recovery scan cleanly, which is how the scanner tells "clean
// shutdown" from a torn tail (current generation, bad CRC).
//
// Checkpointing is compaction, not truncation: records whose in-place
// effects have been issued are marked Applied; Checkpoint rewrites the
// still-unapplied remainder (original LSNs preserved) into the
// inactive half under the next generation and then flips the header.
// The old half stays intact until the new header is durable, so a
// crash during checkpoint loses nothing — and because the unapplied
// set is bounded (Append refuses records that could not be
// re-homed by a checkpoint), Checkpoint always succeeds, which is what
// lets the layout recover from a full journal by syncing and
// compacting instead of failing writes.
//
// The journal takes no locks other than its own and never calls back
// into the store, so it sits at the leaf of the lock hierarchy
// (DESIGN.md §4) and may be invoked from under any store lock.
package journal
