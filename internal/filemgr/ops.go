package filemgr

import (
	"context"

	"nasd/internal/capability"
	"nasd/internal/object"
)

// This file holds the file manager's public operations: the policy path
// clients consult before going drive-direct for data.

// Lookup resolves a path and, when the identity's mode bits allow,
// returns a capability carrying the requested rights — the capability
// piggybacking of the NFS port ("capabilities are piggybacked on the
// file manager's response to lookup operations").
func (fm *FM) Lookup(ctx context.Context, id Identity, path string, want capability.Rights) (Handle, FileInfo, capability.Capability, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	h, err := fm.walk(ctx, id, path)
	if err != nil {
		return Handle{}, FileInfo{}, capability.Capability{}, err
	}
	pol, attrs, err := fm.readPolicy(ctx, h)
	if err != nil {
		return Handle{}, FileInfo{}, capability.Capability{}, err
	}
	var need uint32
	if want.Has(capability.Read) || want.Has(capability.GetAttr) {
		need |= 4
	}
	if want.Has(capability.Write) {
		need |= 2
	}
	if err := checkAccess(id, pol, need); err != nil {
		return Handle{}, FileInfo{}, capability.Capability{}, err
	}
	info := fm.fileInfo(h, pol, attrs)
	var cap capability.Capability
	if want != 0 {
		cap, err = fm.Mint(h, attrs.Version, want)
		if err != nil {
			return Handle{}, FileInfo{}, capability.Capability{}, err
		}
	}
	return h, info, cap, nil
}

// Stat returns file metadata without issuing a capability.
func (fm *FM) Stat(ctx context.Context, id Identity, path string) (FileInfo, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	h, err := fm.walk(ctx, id, path)
	if err != nil {
		return FileInfo{}, err
	}
	pol, attrs, err := fm.readPolicy(ctx, h)
	if err != nil {
		return FileInfo{}, err
	}
	return fm.fileInfo(h, pol, attrs), nil
}

func (fm *FM) fileInfo(h Handle, pol policy, attrs object.Attributes) FileInfo {
	return FileInfo{
		Handle: h, Size: attrs.Size, Mode: pol.Mode, UID: pol.UID, GID: pol.GID,
		ModTime: attrs.ModTime,
	}
}

// Create makes a new file at path owned by id with the given mode and
// returns a read/write capability for it. Placement is round-robin
// across drives.
func (fm *FM) Create(ctx context.Context, id Identity, path string, mode uint32) (Handle, capability.Capability, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	return fm.createLocked(ctx, id, path, mode&0o777, false)
}

// Mkdir makes a directory.
func (fm *FM) Mkdir(ctx context.Context, id Identity, path string, mode uint32) (Handle, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	h, _, err := fm.createLocked(ctx, id, path, ModeDir|(mode&0o777), true)
	if err != nil {
		return Handle{}, err
	}
	if err := fm.writeDir(ctx, h, nil); err != nil {
		return Handle{}, err
	}
	return h, nil
}

func (fm *FM) createLocked(ctx context.Context, id Identity, path string, mode uint32, isDir bool) (Handle, capability.Capability, error) {
	parent, name, err := fm.walkParent(ctx, id, path)
	if err != nil {
		return Handle{}, capability.Capability{}, err
	}
	ppol, _, err := fm.readPolicy(ctx, parent)
	if err != nil {
		return Handle{}, capability.Capability{}, err
	}
	if err := checkAccess(id, ppol, 2); err != nil { // write in parent
		return Handle{}, capability.Capability{}, err
	}
	entries, err := fm.readDir(ctx, parent)
	if err != nil {
		return Handle{}, capability.Capability{}, err
	}
	for _, ent := range entries {
		if ent.name == name {
			return Handle{}, capability.Capability{}, ErrExists
		}
	}
	// Place the object: directories co-locate with metadata on drive 0;
	// files round-robin for bandwidth.
	driveIdx := 0
	if !isDir {
		driveIdx = fm.next % len(fm.drives)
		fm.next++
	}
	cc := fm.mintPartition(driveIdx, capability.CreateObj)
	obj, err := fm.drives[driveIdx].target.Client.Create(ctx, &cc, fm.part)
	if err != nil {
		return Handle{}, capability.Capability{}, err
	}
	h := Handle{Drive: driveIdx, DriveID: fm.drives[driveIdx].target.DriveID, Partition: fm.part, Object: obj, IsDir: isDir}
	gid := uint32(0)
	if len(id.GIDs) > 0 {
		gid = id.GIDs[0]
	}
	if err := fm.writePolicy(ctx, h, mode, id.UID, gid); err != nil {
		return Handle{}, capability.Capability{}, err
	}
	entries = append(entries, dirEntryRec{name: name, drive: uint32(driveIdx), obj: obj, isDir: isDir})
	if err := fm.writeDir(ctx, parent, entries); err != nil {
		return Handle{}, capability.Capability{}, err
	}
	cap, err := fm.Mint(h, 1, capability.Read|capability.Write|capability.GetAttr)
	if err != nil {
		return Handle{}, capability.Capability{}, err
	}
	return h, cap, nil
}

// Remove deletes a file or empty directory.
func (fm *FM) Remove(ctx context.Context, id Identity, path string) error {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	parent, name, err := fm.walkParent(ctx, id, path)
	if err != nil {
		return err
	}
	ppol, _, err := fm.readPolicy(ctx, parent)
	if err != nil {
		return err
	}
	if err := checkAccess(id, ppol, 2); err != nil {
		return err
	}
	entries, err := fm.readDir(ctx, parent)
	if err != nil {
		return err
	}
	idx := -1
	var target dirEntryRec
	for i, ent := range entries {
		if ent.name == name {
			idx, target = i, ent
			break
		}
	}
	if idx < 0 {
		return ErrNotFound
	}
	h := fm.entryHandle(target)
	if target.isDir {
		children, err := fm.readDir(ctx, h)
		if err != nil {
			return err
		}
		if len(children) > 0 {
			return ErrNotEmpty
		}
	}
	a, err := fm.getAttr(ctx, h)
	if err != nil {
		return err
	}
	rc := fm.mintSelf(h, a.Version, capability.Remove)
	if err := fm.cli(h).Remove(ctx, &rc, h.Partition, h.Object); err != nil {
		return err
	}
	entries = append(entries[:idx], entries[idx+1:]...)
	return fm.writeDir(ctx, parent, entries)
}

// Rename moves a file or directory within the namespace. Both parents'
// write permission is required.
func (fm *FM) Rename(ctx context.Context, id Identity, oldPath, newPath string) error {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	oldParent, oldName, err := fm.walkParent(ctx, id, oldPath)
	if err != nil {
		return err
	}
	newParent, newName, err := fm.walkParent(ctx, id, newPath)
	if err != nil {
		return err
	}
	for _, p := range []Handle{oldParent, newParent} {
		pol, _, err := fm.readPolicy(ctx, p)
		if err != nil {
			return err
		}
		if err := checkAccess(id, pol, 2); err != nil {
			return err
		}
	}
	oldEntries, err := fm.readDir(ctx, oldParent)
	if err != nil {
		return err
	}
	idx := -1
	var moving dirEntryRec
	for i, ent := range oldEntries {
		if ent.name == oldName {
			idx, moving = i, ent
			break
		}
	}
	if idx < 0 {
		return ErrNotFound
	}
	samePtr := oldParent.Object == newParent.Object && oldParent.Drive == newParent.Drive
	var newEntries []dirEntryRec
	if samePtr {
		newEntries = oldEntries
	} else {
		newEntries, err = fm.readDir(ctx, newParent)
		if err != nil {
			return err
		}
	}
	for _, ent := range newEntries {
		if ent.name == newName {
			return ErrExists
		}
	}
	moving.name = newName
	if samePtr {
		oldEntries[idx] = moving
		return fm.writeDir(ctx, oldParent, oldEntries)
	}
	oldEntries = append(oldEntries[:idx], oldEntries[idx+1:]...)
	newEntries = append(newEntries, moving)
	if err := fm.writeDir(ctx, oldParent, oldEntries); err != nil {
		return err
	}
	return fm.writeDir(ctx, newParent, newEntries)
}

// ReadDir lists a directory.
func (fm *FM) ReadDir(ctx context.Context, id Identity, path string) ([]DirEntry, error) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	h, err := fm.walk(ctx, id, path)
	if err != nil {
		return nil, err
	}
	if !h.IsDir {
		return nil, ErrNotDir
	}
	pol, _, err := fm.readPolicy(ctx, h)
	if err != nil {
		return nil, err
	}
	if err := checkAccess(id, pol, 4); err != nil {
		return nil, err
	}
	entries, err := fm.readDir(ctx, h)
	if err != nil {
		return nil, err
	}
	out := make([]DirEntry, 0, len(entries))
	for _, ent := range entries {
		out = append(out, DirEntry{Name: ent.name, Handle: fm.entryHandle(ent)})
	}
	return out, nil
}

// Chmod changes a file's mode bits (owner or root only).
func (fm *FM) Chmod(ctx context.Context, id Identity, path string, mode uint32) error {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	h, err := fm.walk(ctx, id, path)
	if err != nil {
		return err
	}
	pol, _, err := fm.readPolicy(ctx, h)
	if err != nil {
		return err
	}
	if id.UID != 0 && id.UID != pol.UID {
		return ErrPerm
	}
	keep := pol.Mode &^ uint32(0o777)
	return fm.writePolicy(ctx, h, keep|(mode&0o777), pol.UID, pol.GID)
}

// Revoke immediately invalidates all outstanding capabilities for a
// file by bumping its logical version number (Section 4.1's revocation
// mechanism). Owner or root only.
func (fm *FM) Revoke(ctx context.Context, id Identity, path string) error {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	h, err := fm.walk(ctx, id, path)
	if err != nil {
		return err
	}
	pol, attrs, err := fm.readPolicy(ctx, h)
	if err != nil {
		return err
	}
	if id.UID != 0 && id.UID != pol.UID {
		return ErrPerm
	}
	bc := fm.mintSelf(h, attrs.Version, capability.SetAttr)
	_, err = fm.cli(h).BumpVersion(ctx, &bc, h.Partition, h.Object)
	return err
}
