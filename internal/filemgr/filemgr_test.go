package filemgr

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/rpc"
)

var testCtx = context.Background()

// newFS builds a secure file manager over n in-process drives and
// returns it with per-drive clients for direct data access.
func newFS(t *testing.T, n int) (*FM, []DriveTarget) {
	t.Helper()
	var targets []DriveTarget
	for i := 0; i < n; i++ {
		master := crypt.NewRandomKey()
		dev := blockdev.NewMemDisk(4096, 8192)
		drv, err := drive.NewFormat(dev, drive.Config{ID: uint64(100 + i), Master: master, Secure: true})
		if err != nil {
			t.Fatal(err)
		}
		l := rpc.NewInProcListener("d")
		srv := drv.Serve(l)
		t.Cleanup(srv.Close)
		conn, err := l.Dial()
		if err != nil {
			t.Fatal(err)
		}
		cli := client.New(conn, uint64(100+i), uint64(9000+i))
		t.Cleanup(func() { cli.Close() })
		targets = append(targets, DriveTarget{Client: cli, DriveID: uint64(100 + i), Master: master})
	}
	fm, err := Format(testCtx, Config{Drives: targets})
	if err != nil {
		t.Fatal(err)
	}
	return fm, targets
}

var alice = Identity{UID: 10, GIDs: []uint32{100}}
var bob = Identity{UID: 20, GIDs: []uint32{200}}

func TestCreateLookupReadWriteDirect(t *testing.T) {
	fm, targets := newFS(t, 2)
	h, cap, err := fm.Create(testCtx, alice, "/report.txt", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// The client writes directly to the drive with the capability — the
	// file manager is no longer in the path.
	cli := targets[h.Drive].Client
	data := []byte("direct to the drive")
	if err := cli.Write(testCtx, &cap, h.Partition, h.Object, 0, data); err != nil {
		t.Fatal(err)
	}
	// A second client looks the file up and reads directly.
	h2, info, rcap, err := fm.Lookup(testCtx, alice, "/report.txt", capability.Read)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Fatalf("lookup handle %+v != create handle %+v", h2, h)
	}
	if info.Size != uint64(len(data)) {
		t.Fatalf("size = %d", info.Size)
	}
	got, err := targets[h2.Drive].Client.Read(testCtx, &rcap, h2.Partition, h2.Object, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("direct read = %q, %v", got, err)
	}
}

func TestAccessControl(t *testing.T) {
	fm, _ := newFS(t, 1)
	if _, _, err := fm.Create(testCtx, alice, "/private.txt", 0o600); err != nil {
		t.Fatal(err)
	}
	// Bob cannot obtain a read capability.
	if _, _, _, err := fm.Lookup(testCtx, bob, "/private.txt", capability.Read); !errors.Is(err, ErrPerm) {
		t.Fatalf("bob read: %v", err)
	}
	// Alice can.
	if _, _, _, err := fm.Lookup(testCtx, alice, "/private.txt", capability.Read); err != nil {
		t.Fatal(err)
	}
	// Group access: 0640 lets group members read but not write.
	if _, _, err := fm.Create(testCtx, alice, "/group.txt", 0o640); err != nil {
		t.Fatal(err)
	}
	carol := Identity{UID: 30, GIDs: []uint32{100}} // alice's group
	if _, _, _, err := fm.Lookup(testCtx, carol, "/group.txt", capability.Read); err != nil {
		t.Fatalf("group read: %v", err)
	}
	if _, _, _, err := fm.Lookup(testCtx, carol, "/group.txt", capability.Write); !errors.Is(err, ErrPerm) {
		t.Fatalf("group write: %v", err)
	}
	// Root bypasses.
	if _, _, _, err := fm.Lookup(testCtx, Root, "/private.txt", capability.Read|capability.Write); err != nil {
		t.Fatalf("root: %v", err)
	}
}

func TestMkdirWalkAndReadDir(t *testing.T) {
	fm, _ := newFS(t, 1)
	if _, err := fm.Mkdir(testCtx, alice, "/docs", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := fm.Mkdir(testCtx, alice, "/docs/2026", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fm.Create(testCtx, alice, "/docs/2026/notes.txt", 0o644); err != nil {
		t.Fatal(err)
	}
	ents, err := fm.ReadDir(testCtx, alice, "/docs/2026")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "notes.txt" {
		t.Fatalf("entries = %+v", ents)
	}
	info, err := fm.Stat(testCtx, alice, "/docs/2026/notes.txt")
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode&0o777 != 0o644 || info.UID != 10 {
		t.Fatalf("info = %+v", info)
	}
	// Paths must be absolute and .. is rejected.
	if _, err := fm.Stat(testCtx, alice, "docs"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("relative path: %v", err)
	}
	if _, err := fm.Stat(testCtx, alice, "/docs/../etc"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("dotdot path: %v", err)
	}
}

func TestCreateCollision(t *testing.T) {
	fm, _ := newFS(t, 1)
	if _, _, err := fm.Create(testCtx, alice, "/x", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fm.Create(testCtx, alice, "/x", 0o644); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := fm.Mkdir(testCtx, alice, "/x", 0o755); !errors.Is(err, ErrExists) {
		t.Fatalf("mkdir over file: %v", err)
	}
}

func TestRemove(t *testing.T) {
	fm, _ := newFS(t, 1)
	if _, _, err := fm.Create(testCtx, alice, "/trash", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fm.Remove(testCtx, alice, "/trash"); err != nil {
		t.Fatal(err)
	}
	if _, err := fm.Stat(testCtx, alice, "/trash"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat after remove: %v", err)
	}
	// Non-empty directory removal fails.
	if _, err := fm.Mkdir(testCtx, alice, "/dir", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fm.Create(testCtx, alice, "/dir/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fm.Remove(testCtx, alice, "/dir"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("remove non-empty: %v", err)
	}
	if err := fm.Remove(testCtx, alice, "/dir/f"); err != nil {
		t.Fatal(err)
	}
	if err := fm.Remove(testCtx, alice, "/dir"); err != nil {
		t.Fatal(err)
	}
}

func TestRename(t *testing.T) {
	fm, _ := newFS(t, 2)
	if _, _, err := fm.Create(testCtx, alice, "/a", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fm.Mkdir(testCtx, alice, "/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	// Same-directory rename.
	if err := fm.Rename(testCtx, alice, "/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fm.Stat(testCtx, alice, "/a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("old name survives")
	}
	// Cross-directory rename.
	if err := fm.Rename(testCtx, alice, "/b", "/sub/c"); err != nil {
		t.Fatal(err)
	}
	if _, err := fm.Stat(testCtx, alice, "/sub/c"); err != nil {
		t.Fatal(err)
	}
	// Rename onto existing target fails.
	if _, _, err := fm.Create(testCtx, alice, "/d", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fm.Rename(testCtx, alice, "/d", "/sub/c"); !errors.Is(err, ErrExists) {
		t.Fatalf("rename onto existing: %v", err)
	}
}

func TestChmod(t *testing.T) {
	fm, _ := newFS(t, 1)
	if _, _, err := fm.Create(testCtx, alice, "/f", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fm.Chmod(testCtx, bob, "/f", 0o666); !errors.Is(err, ErrPerm) {
		t.Fatalf("chmod by non-owner: %v", err)
	}
	if err := fm.Chmod(testCtx, alice, "/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := fm.Lookup(testCtx, bob, "/f", capability.Read); err != nil {
		t.Fatalf("bob read after chmod: %v", err)
	}
}

func TestRevokeInvalidatesOutstandingCapability(t *testing.T) {
	fm, targets := newFS(t, 1)
	h, cap, err := fm.Create(testCtx, alice, "/secret", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	cli := targets[h.Drive].Client
	if err := cli.Write(testCtx, &cap, h.Partition, h.Object, 0, []byte("live")); err != nil {
		t.Fatal(err)
	}
	if err := fm.Revoke(testCtx, alice, "/secret"); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Read(testCtx, &cap, h.Partition, h.Object, 0, 4); !errors.Is(err, client.ErrAuth) {
		t.Fatalf("revoked capability still works: %v", err)
	}
	// A fresh lookup re-arms the client.
	h2, _, fresh, err := fm.Lookup(testCtx, alice, "/secret", capability.Read)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cli.Read(testCtx, &fresh, h2.Partition, h2.Object, 0, 4)
	if err != nil || string(got) != "live" {
		t.Fatalf("fresh read = %q, %v", got, err)
	}
}

func TestFilesSpreadAcrossDrives(t *testing.T) {
	fm, _ := newFS(t, 3)
	used := map[int]bool{}
	for i := 0; i < 6; i++ {
		h, _, err := fm.Create(testCtx, alice, "/f"+string(rune('a'+i)), 0o644)
		if err != nil {
			t.Fatal(err)
		}
		used[h.Drive] = true
	}
	if len(used) != 3 {
		t.Fatalf("files placed on %d of 3 drives", len(used))
	}
}

func TestMountExistingFilesystem(t *testing.T) {
	fm, targets := newFS(t, 2)
	if _, _, err := fm.Create(testCtx, alice, "/persist", 0o644); err != nil {
		t.Fatal(err)
	}
	fm2, err := Mount(testCtx, Config{Drives: targets})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fm2.Stat(testCtx, alice, "/persist"); err != nil {
		t.Fatalf("file invisible after remount: %v", err)
	}
}

func TestMintRange(t *testing.T) {
	fm, targets := newFS(t, 1)
	h, _, err := fm.Create(testCtx, alice, "/escrow", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Escrow capability: allows writing only the first 8 KB.
	ranged, err := fm.MintRange(h, 1, capability.Write, 0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	cli := targets[h.Drive].Client
	if err := cli.Write(testCtx, &ranged, h.Partition, h.Object, 0, make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := cli.Write(testCtx, &ranged, h.Partition, h.Object, 8192, []byte("x")); !errors.Is(err, client.ErrAuth) {
		t.Fatalf("write past escrow range: %v", err)
	}
}

func TestLookupParentPermissionEnforced(t *testing.T) {
	fm, _ := newFS(t, 1)
	if _, err := fm.Mkdir(testCtx, alice, "/locked", 0o700); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fm.Create(testCtx, alice, "/locked/inner", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fm.Stat(testCtx, bob, "/locked/inner"); !errors.Is(err, ErrPerm) {
		t.Fatalf("walk through 0700 dir: %v", err)
	}
}
