// Package filemgr implements a NASD file manager: the residual
// filesystem of Figure 1. It owns naming (a directory hierarchy stored
// in NASD objects), access control (owner/group/mode bits kept in each
// object's uninterpreted attribute block), and capability issuance and
// revocation. It is consulted on namespace and policy operations only —
// data moves directly between clients and drives, which is the entire
// point of the architecture ("asynchronous oversight").
package filemgr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/object"
	"nasd/internal/rpc"
)

// Identity names a caller for access control decisions.
type Identity struct {
	UID  uint32
	GIDs []uint32
}

// Root is the superuser.
var Root = Identity{UID: 0}

// InGroup reports whether the identity carries gid.
func (id Identity) InGroup(gid uint32) bool {
	for _, g := range id.GIDs {
		if g == gid {
			return true
		}
	}
	return false
}

// Mode bits (a classic UNIX subset).
const (
	ModeDir uint32 = 1 << 16
)

// Handle locates a file or directory: which drive, partition, object.
type Handle struct {
	Drive     int // index into the file manager's drive table
	DriveID   uint64
	Partition uint16
	Object    uint64
	IsDir     bool
}

// DirEntry is one directory listing entry.
type DirEntry struct {
	Name   string
	Handle Handle
}

// FileInfo combines drive-maintained attributes with policy attributes
// the file manager keeps in the uninterpreted block (Section 5.1: file
// length and modify time come from NASD object attributes; owner and
// mode bits live in the uninterpreted attributes).
type FileInfo struct {
	Handle  Handle
	Size    uint64
	Mode    uint32
	UID     uint32
	GID     uint32
	ModTime time.Time
}

// Errors.
var (
	ErrNotFound = errors.New("filemgr: no such file or directory")
	ErrExists   = errors.New("filemgr: already exists")
	ErrNotDir   = errors.New("filemgr: not a directory")
	ErrIsDir    = errors.New("filemgr: is a directory")
	ErrPerm     = errors.New("filemgr: permission denied")
	ErrNotEmpty = errors.New("filemgr: directory not empty")
	ErrBadPath  = errors.New("filemgr: invalid path")
)

// DriveTarget is one drive under this file manager's management.
type DriveTarget struct {
	// Client is an authenticated connection to the drive.
	Client *client.Drive
	// DriveID is the drive's identity.
	DriveID uint64
	// Master is the shared master key; the file manager derives the
	// same hierarchy the drive holds.
	Master crypt.Key
}

// Config configures a file manager.
type Config struct {
	Drives []DriveTarget
	// Partition is the partition the filesystem occupies on each drive.
	Partition uint16
	// Quota is the per-drive partition quota in blocks (0 = unlimited).
	Quota int64
	// CapExpiry bounds capability lifetime (default 5 minutes; the
	// paper uses expiry to bound callback waiting in AFS).
	CapExpiry time.Duration
	// Clock for expiry stamping.
	Clock func() time.Time
}

type driveState struct {
	target DriveTarget
	keys   *crypt.Hierarchy
}

// FM is a file manager instance.
type FM struct {
	mu     sync.Mutex
	drives []*driveState
	part   uint16
	expiry time.Duration
	clock  func() time.Time
	root   Handle
	next   int // round-robin placement cursor
}

// rootObjectID is the well-known object holding the filesystem root
// directory on drive 0: the first user object created after format.
const rootObjectID = object.FirstUserObject

// Format initializes the filesystem: creates the partition on every
// drive and an empty root directory on drive 0.
func Format(ctx context.Context, cfg Config) (*FM, error) {
	fm, err := newFM(cfg)
	if err != nil {
		return nil, err
	}
	for i, d := range fm.drives {
		err := d.target.Client.CreatePartition(ctx, crypt.KeyID{Type: crypt.MasterKey}, d.target.Master, fm.part, cfg.Quota)
		if err != nil {
			return nil, fmt.Errorf("filemgr: creating partition on drive %d: %w", i, err)
		}
		if err := d.keys.AddPartition(fm.part); err != nil {
			return nil, err
		}
	}
	// Root directory on drive 0.
	cap := fm.mintPartition(0, capability.CreateObj)
	rootObj, err := fm.drives[0].target.Client.Create(ctx, &cap, fm.part)
	if err != nil {
		return nil, fmt.Errorf("filemgr: creating root: %w", err)
	}
	if rootObj != rootObjectID {
		return nil, fmt.Errorf("filemgr: root object id %d, want well-known %d", rootObj, rootObjectID)
	}
	fm.root = Handle{Drive: 0, DriveID: fm.drives[0].target.DriveID, Partition: fm.part, Object: rootObj, IsDir: true}
	// The fresh root is world-writable so any identity can build its
	// own subtree; administrators can Chmod it down afterwards.
	if err := fm.writePolicy(ctx, fm.root, ModeDir|0o777, 0, 0); err != nil {
		return nil, err
	}
	if err := fm.writeDir(ctx, fm.root, nil); err != nil {
		return nil, err
	}
	return fm, nil
}

// Mount attaches to an already-formatted filesystem.
func Mount(ctx context.Context, cfg Config) (*FM, error) {
	fm, err := newFM(cfg)
	if err != nil {
		return nil, err
	}
	for _, d := range fm.drives {
		if err := d.keys.AddPartition(fm.part); err != nil {
			return nil, err
		}
	}
	fm.root = Handle{Drive: 0, DriveID: fm.drives[0].target.DriveID, Partition: fm.part, Object: rootObjectID, IsDir: true}
	// Verify the root exists.
	if _, err := fm.getAttr(ctx, fm.root); err != nil {
		return nil, fmt.Errorf("filemgr: root directory missing: %w", err)
	}
	return fm, nil
}

func newFM(cfg Config) (*FM, error) {
	if len(cfg.Drives) == 0 {
		return nil, errors.New("filemgr: no drives")
	}
	if cfg.Partition == 0 {
		cfg.Partition = 1
	}
	if cfg.CapExpiry == 0 {
		cfg.CapExpiry = 5 * time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	fm := &FM{part: cfg.Partition, expiry: cfg.CapExpiry, clock: cfg.Clock}
	for _, t := range cfg.Drives {
		fm.drives = append(fm.drives, &driveState{target: t, keys: crypt.NewHierarchy(t.Master)})
	}
	return fm, nil
}

// Root returns the root directory handle.
func (fm *FM) Root() Handle { return fm.root }

// DriveCount returns the number of managed drives.
func (fm *FM) DriveCount() int { return len(fm.drives) }

// --- capability minting ----------------------------------------------------

// Mint issues a capability for an object at its current version.
// This is the file manager's core privilege: it holds the drive keys.
func (fm *FM) Mint(h Handle, objVer uint64, rights capability.Rights) (capability.Capability, error) {
	d := fm.drives[h.Drive]
	kid, key, err := d.keys.CurrentWorkingKey(h.Partition)
	if err != nil {
		return capability.Capability{}, err
	}
	pub := capability.Public{
		DriveID:   h.DriveID,
		Partition: h.Partition,
		Object:    h.Object,
		ObjVer:    objVer,
		Rights:    rights,
		Expiry:    fm.clock().Add(fm.expiry).UnixNano(),
		Key:       kid,
	}
	return capability.Mint(pub, key), nil
}

// MintRange issues a byte-range-restricted capability (the quota-escrow
// primitive of Section 5.1's AFS port).
func (fm *FM) MintRange(h Handle, objVer uint64, rights capability.Rights, off, length uint64) (capability.Capability, error) {
	c, err := fm.Mint(h, objVer, rights)
	if err != nil {
		return c, err
	}
	d := fm.drives[h.Drive]
	_, key, err := d.keys.CurrentWorkingKey(h.Partition)
	if err != nil {
		return capability.Capability{}, err
	}
	pub := c.Public
	pub.Offset = off
	pub.Length = length
	return capability.Mint(pub, key), nil
}

// MintWildcard issues a partition-scope capability (Object 0) with the
// given rights for one drive. Such capabilities are not bound to any
// object version, so trusted components (the file manager itself, the
// AFS manager, the storage manager) use them for attribute reads whose
// current version is not yet known.
func (fm *FM) MintWildcard(driveIdx int, rights capability.Rights) capability.Capability {
	return fm.mintPartition(driveIdx, rights)
}

// mintPartition issues a partition-scope capability for internal use.
func (fm *FM) mintPartition(driveIdx int, rights capability.Rights) capability.Capability {
	d := fm.drives[driveIdx]
	kid, key, err := d.keys.CurrentWorkingKey(fm.part)
	if err != nil {
		// Partition keys exist for every formatted drive; reaching this
		// indicates drive-table misuse.
		panic("filemgr: no partition key: " + err.Error())
	}
	pub := capability.Public{
		DriveID:   d.target.DriveID,
		Partition: fm.part,
		Object:    0,
		ObjVer:    0,
		Rights:    rights,
		Expiry:    fm.clock().Add(fm.expiry).UnixNano(),
		Key:       kid,
	}
	return capability.Mint(pub, key)
}

// mintSelf issues an object capability for the file manager's own
// metadata access.
func (fm *FM) mintSelf(h Handle, ver uint64, rights capability.Rights) capability.Capability {
	c, err := fm.Mint(h, ver, rights)
	if err != nil {
		panic("filemgr: minting self capability: " + err.Error())
	}
	return c
}

// --- low-level object access ------------------------------------------------

func (fm *FM) cli(h Handle) *client.Drive { return fm.drives[h.Drive].target.Client }

func (fm *FM) getAttr(ctx context.Context, h Handle) (object.Attributes, error) {
	// Version unknown before the call; use a GetAttr capability minted
	// against each plausible version. The drive checks version equality,
	// so the file manager keeps attribute reads simple by minting with
	// version read from a first unauthenticated attempt. To avoid two
	// round trips we mint with version 0..3 fallbacks only in the rare
	// revocation window; normally version matches the cached value.
	//
	// Simpler and correct: attribute reads from the *file manager* are
	// policy-path operations, so issue them under a partition-scope
	// capability (Object=0, version 0), which the drive accepts for any
	// object in the partition.
	cap := fm.mintPartition(h.Drive, capability.GetAttr)
	return fm.cli(h).GetAttr(ctx, &cap, h.Partition, h.Object)
}

func (fm *FM) readObject(ctx context.Context, h Handle, ver uint64) ([]byte, error) {
	a, err := fm.getAttr(ctx, h)
	if err != nil {
		return nil, err
	}
	cap := fm.mintSelf(h, a.Version, capability.Read)
	return fm.cli(h).ReadPipelined(ctx, &cap, h.Partition, h.Object, 0, int(a.Size))
}

func (fm *FM) writeObject(ctx context.Context, h Handle, data []byte) error {
	a, err := fm.getAttr(ctx, h)
	if err != nil {
		return err
	}
	cap := fm.mintSelf(h, a.Version, capability.Write|capability.SetAttr)
	if err := fm.cli(h).WritePipelined(ctx, &cap, h.Partition, h.Object, 0, data); err != nil {
		return err
	}
	// Truncate to the new length when shrinking.
	if uint64(len(data)) < a.Size {
		return fm.cli(h).SetAttr(ctx, &cap, h.Partition, h.Object,
			object.Attributes{Size: uint64(len(data))}, object.SetSize)
	}
	return nil
}

// --- policy attributes -------------------------------------------------------

// policy is what lives in the uninterpreted attribute block.
type policy struct {
	Mode uint32
	UID  uint32
	GID  uint32
}

func encodePolicy(pol policy) [256]byte {
	var b [256]byte
	var e rpc.Encoder
	e.U32(pol.Mode)
	e.U32(pol.UID)
	e.U32(pol.GID)
	copy(b[:], e.Bytes())
	return b
}

func decodePolicy(b [256]byte) policy {
	d := rpc.NewDecoder(b[:12])
	return policy{Mode: d.U32(), UID: d.U32(), GID: d.U32()}
}

func (fm *FM) writePolicy(ctx context.Context, h Handle, mode, uid, gid uint32) error {
	a, err := fm.getAttr(ctx, h)
	if err != nil {
		return err
	}
	cap := fm.mintSelf(h, a.Version, capability.SetAttr)
	attrs := object.Attributes{Uninterp: encodePolicy(policy{Mode: mode, UID: uid, GID: gid})}
	return fm.cli(h).SetAttr(ctx, &cap, h.Partition, h.Object, attrs, object.SetUninterp)
}

func (fm *FM) readPolicy(ctx context.Context, h Handle) (policy, object.Attributes, error) {
	a, err := fm.getAttr(ctx, h)
	if err != nil {
		return policy{}, a, err
	}
	return decodePolicy(a.Uninterp), a, nil
}

// checkAccess enforces mode bits: want is a 3-bit rwx mask (4=r, 2=w).
func checkAccess(id Identity, pol policy, want uint32) error {
	if id.UID == 0 {
		return nil
	}
	var bits uint32
	switch {
	case id.UID == pol.UID:
		bits = (pol.Mode >> 6) & 7
	case id.InGroup(pol.GID):
		bits = (pol.Mode >> 3) & 7
	default:
		bits = pol.Mode & 7
	}
	if bits&want != want {
		return ErrPerm
	}
	return nil
}

// --- directory representation -----------------------------------------------

type dirEntryRec struct {
	name  string
	drive uint32
	obj   uint64
	isDir bool
}

func encodeDir(entries []dirEntryRec) []byte {
	var e rpc.Encoder
	e.U32(uint32(len(entries)))
	for _, ent := range entries {
		e.String(ent.name)
		e.U32(ent.drive)
		e.U64(ent.obj)
		if ent.isDir {
			e.U8(1)
		} else {
			e.U8(0)
		}
	}
	return e.Bytes()
}

func decodeDir(b []byte) ([]dirEntryRec, error) {
	d := rpc.NewDecoder(b)
	n := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	out := make([]dirEntryRec, 0, n)
	for i := 0; i < n; i++ {
		ent := dirEntryRec{name: d.String(), drive: d.U32(), obj: d.U64(), isDir: d.U8() == 1}
		if d.Err() != nil {
			return nil, d.Err()
		}
		out = append(out, ent)
	}
	return out, nil
}

func (fm *FM) readDir(ctx context.Context, h Handle) ([]dirEntryRec, error) {
	data, err := fm.readObject(ctx, h, 0)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, nil
	}
	return decodeDir(data)
}

func (fm *FM) writeDir(ctx context.Context, h Handle, entries []dirEntryRec) error {
	return fm.writeObject(ctx, h, encodeDir(entries))
}

// --- path walking -------------------------------------------------------------

func splitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, ErrBadPath
	}
	var parts []string
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
		case "..":
			return nil, ErrBadPath
		default:
			parts = append(parts, p)
		}
	}
	return parts, nil
}

// walk resolves path to its handle, checking execute (search)
// permission along the way. Caller holds mu.
func (fm *FM) walk(ctx context.Context, id Identity, path string) (Handle, error) {
	parts, err := splitPath(path)
	if err != nil {
		return Handle{}, err
	}
	cur := fm.root
	for _, name := range parts {
		if !cur.IsDir {
			return Handle{}, ErrNotDir
		}
		pol, _, err := fm.readPolicy(ctx, cur)
		if err != nil {
			return Handle{}, err
		}
		if err := checkAccess(id, pol, 1); err != nil { // search
			return Handle{}, err
		}
		entries, err := fm.readDir(ctx, cur)
		if err != nil {
			return Handle{}, err
		}
		found := false
		for _, ent := range entries {
			if ent.name == name {
				cur = fm.entryHandle(ent)
				found = true
				break
			}
		}
		if !found {
			return Handle{}, ErrNotFound
		}
	}
	return cur, nil
}

func (fm *FM) entryHandle(ent dirEntryRec) Handle {
	return Handle{
		Drive:     int(ent.drive),
		DriveID:   fm.drives[ent.drive].target.DriveID,
		Partition: fm.part,
		Object:    ent.obj,
		IsDir:     ent.isDir,
	}
}

// walkParent resolves the parent directory of path and returns it with
// the final name component.
func (fm *FM) walkParent(ctx context.Context, id Identity, path string) (Handle, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return Handle{}, "", err
	}
	if len(parts) == 0 {
		return Handle{}, "", ErrBadPath
	}
	dirPath := "/" + strings.Join(parts[:len(parts)-1], "/")
	parent, err := fm.walk(ctx, id, dirPath)
	if err != nil {
		return Handle{}, "", err
	}
	if !parent.IsDir {
		return Handle{}, "", ErrNotDir
	}
	return parent, parts[len(parts)-1], nil
}
