package blockdev

import (
	"testing"

	"nasd/internal/telemetry"
)

func TestInstrumentedDevice(t *testing.T) {
	reg := telemetry.NewRegistry()
	dev := Instrument(NewMemDisk(4096, 64), reg)
	if dev.BlockSize() != 4096 || dev.Blocks() != 64 {
		t.Fatalf("geometry not forwarded: %d x %d", dev.BlockSize(), dev.Blocks())
	}

	buf := make([]byte, 4096)
	if err := dev.WriteBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	if err := dev.ReadBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	if err := dev.Flush(); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if s.Counters["blockdev.reads"] != 1 || s.Counters["blockdev.writes"] != 1 {
		t.Fatalf("reads/writes = %d/%d, want 1/1",
			s.Counters["blockdev.reads"], s.Counters["blockdev.writes"])
	}
	if s.Histograms["blockdev.read_ns"].Count != 1 || s.Histograms["blockdev.write_ns"].Count != 1 {
		t.Fatal("latency histograms missing observations")
	}
	if s.Gauges["blockdev.queue_depth"] != 0 {
		t.Fatalf("queue depth at rest = %d", s.Gauges["blockdev.queue_depth"])
	}
	if dev.BusyNanos() <= 0 {
		t.Fatalf("busy time = %d, want > 0", dev.BusyNanos())
	}
	if s.Gauges["blockdev.busy_ns"] > dev.BusyNanos() {
		t.Fatal("pull gauge reports more busy time than the device")
	}

	// Failed operations don't count as completed I/Os.
	if err := dev.ReadBlock(1000, buf); err == nil {
		t.Fatal("out-of-range read should fail")
	}
	if got := reg.Snapshot().Counters["blockdev.reads"]; got != 1 {
		t.Fatalf("failed read counted: %d", got)
	}
}
