package blockdev

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
)

// ErrCrashed is returned by every CrashDisk operation after Crash.
var ErrCrashed = errors.New("blockdev: crashed")

// CrashDisk models a drive with a volatile write cache for crash-
// consistency testing. Writes land in an in-memory overlay; Flush
// persists the overlay to the inner device — in a seeded-shuffled
// order, because a real cache destages with no ordering guarantee.
// Crash discards whatever the overlay still holds, so everything
// written since the last completed Flush is lost.
//
// A crash budget (SetCrashAfter) arms a deterministic mid-flush crash:
// the Nth persist step fails, leaving a random subset of the flushing
// batch durable and — optionally — one torn block whose tail is
// zeroed mid-write. Walking N across a mutation history visits every
// intermediate persistence state, which is what the crash-harness
// property test sweeps.
type CrashDisk struct {
	mu      sync.Mutex
	inner   Device
	rng     *rand.Rand
	overlay map[int64][]byte

	crashed    bool
	armed      bool
	budget     int64 // persist steps remaining before the crash fires
	steps      int64 // total persist steps so far
	tearWrites bool
}

// NewCrashDisk wraps inner with the given deterministic seed.
func NewCrashDisk(inner Device, seed int64) *CrashDisk {
	return &CrashDisk{
		inner:   inner,
		rng:     rand.New(rand.NewSource(seed)),
		overlay: make(map[int64][]byte),
	}
}

// SetCrashAfter arms a crash that fires on the n-th future persist
// step (a single block moving from overlay to inner during Flush).
// n <= 0 disarms.
func (d *CrashDisk) SetCrashAfter(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.armed = n > 0
	d.budget = n
}

// SetTearWrites controls whether the crashing persist step writes a
// torn block instead of dropping it entirely. A torn block is a
// sector-granular partial write — a prefix of 512-byte sectors carries
// the new data, the rest keeps the old contents — matching the sector
// atomicity real disks guarantee. Both outcomes are legal for real
// media.
func (d *CrashDisk) SetTearWrites(tear bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tearWrites = tear
}

// Steps returns how many persist steps have executed, which bounds the
// crash-point space for a given workload.
func (d *CrashDisk) Steps() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.steps
}

// Crash drops the volatile overlay immediately: every write since the
// last completed Flush is lost and all subsequent operations return
// ErrCrashed. The persisted state remains readable through the inner
// device (reopen it to simulate a restart).
func (d *CrashDisk) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashed = true
	d.overlay = make(map[int64][]byte)
}

// Crashed reports whether the disk has crashed.
func (d *CrashDisk) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// BlockSize implements Device.
func (d *CrashDisk) BlockSize() int { return d.inner.BlockSize() }

// Blocks implements Device.
func (d *CrashDisk) Blocks() int64 { return d.inner.Blocks() }

// ReadBlock implements Device: overlay first, then the inner device.
func (d *CrashDisk) ReadBlock(i int64, buf []byte) error {
	d.mu.Lock()
	if d.crashed {
		d.mu.Unlock()
		return ErrCrashed
	}
	if b, ok := d.overlay[i]; ok {
		if len(buf) != len(b) {
			d.mu.Unlock()
			return ErrBadSize
		}
		copy(buf, b)
		d.mu.Unlock()
		return nil
	}
	d.mu.Unlock()
	return d.inner.ReadBlock(i, buf)
}

// WriteBlock implements Device: the write lands in the volatile
// overlay only.
func (d *CrashDisk) WriteBlock(i int64, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	if i < 0 || i >= d.inner.Blocks() {
		return ErrOutOfRange
	}
	if len(data) != d.inner.BlockSize() {
		return ErrBadSize
	}
	b, ok := d.overlay[i]
	if !ok {
		b = make([]byte, len(data))
		d.overlay[i] = b
	}
	copy(b, data)
	return nil
}

// Flush implements Device: destage the overlay to the inner device in
// a shuffled order. If the armed crash budget runs out mid-destage the
// flush fails with ErrCrashed, the remaining overlay is dropped, and
// the disk is crashed — a random subset of the batch made it to
// stable storage, possibly with one torn block.
func (d *CrashDisk) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	blocks := make([]int64, 0, len(d.overlay))
	for i := range d.overlay {
		blocks = append(blocks, i)
	}
	// Sort first so the shuffle is a deterministic function of the
	// seed and the set, not of map iteration order.
	sort.Slice(blocks, func(a, b int) bool { return blocks[a] < blocks[b] })
	d.rng.Shuffle(len(blocks), func(a, b int) { blocks[a], blocks[b] = blocks[b], blocks[a] })
	for _, i := range blocks {
		data := d.overlay[i]
		if d.armed {
			d.budget--
			if d.budget <= 0 {
				if sectors := len(data) / 512; d.tearWrites && sectors > 1 {
					// Persist a strict sector prefix of the new data;
					// unwritten sectors keep their old contents.
					torn := make([]byte, len(data))
					if err := d.inner.ReadBlock(i, torn); err != nil {
						for j := range torn {
							torn[j] = 0
						}
					}
					cut := (1 + d.rng.Intn(sectors-1)) * 512
					copy(torn[:cut], data[:cut])
					d.inner.WriteBlock(i, torn)
				}
				d.crashed = true
				d.overlay = make(map[int64][]byte)
				return ErrCrashed
			}
		}
		d.steps++
		if err := d.inner.WriteBlock(i, data); err != nil {
			return err
		}
		delete(d.overlay, i)
	}
	return d.inner.Flush()
}

var _ Device = (*CrashDisk)(nil)
