package blockdev

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFileDiskRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	d, err := CreateFileDisk(path, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.BlockSize() != 512 || d.Blocks() != 64 {
		t.Fatalf("geometry = %dx%d", d.BlockSize(), d.Blocks())
	}
	data := bytes.Repeat([]byte{0xAB}, 512)
	if err := d.WriteBlock(7, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if err := d.ReadBlock(7, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("round trip failed")
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestFileDiskPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	d, err := CreateFileDisk(path, 4096, 32)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("durable!"), 512)
	if err := d.WriteBlock(3, data); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.BlockSize() != 4096 || d2.Blocks() != 32 {
		t.Fatalf("geometry lost: %dx%d", d2.BlockSize(), d2.Blocks())
	}
	buf := make([]byte, 4096)
	if err := d2.ReadBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("data lost across reopen")
	}
}

func TestFileDiskBounds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	d, err := CreateFileDisk(path, 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	buf := make([]byte, 512)
	if err := d.ReadBlock(8, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read past end: %v", err)
	}
	if err := d.WriteBlock(-1, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative write: %v", err)
	}
	if err := d.ReadBlock(0, make([]byte, 100)); !errors.Is(err, ErrBadSize) {
		t.Fatalf("short buffer: %v", err)
	}
}

func TestOpenFileDiskRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-disk")
	if err := os.WriteFile(path, bytes.Repeat([]byte{1}, 8192), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileDisk(path); err == nil {
		t.Fatal("garbage file accepted")
	}
	if _, err := OpenFileDisk(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCreateFileDiskRejectsBadGeometry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	if _, err := CreateFileDisk(path, 0, 8); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := CreateFileDisk(path, 512, 0); err == nil {
		t.Fatal("zero blocks accepted")
	}
}
