package blockdev

import (
	"bytes"
	"errors"
	"testing"
)

func fill(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }

func TestCrashDiskVolatileUntilFlush(t *testing.T) {
	inner := NewMemDisk(512, 64)
	d := NewCrashDisk(inner, 1)
	if err := d.WriteBlock(3, fill(0xAA, 512)); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Visible through the cache...
	buf := make([]byte, 512)
	if err := d.ReadBlock(3, buf); err != nil || buf[0] != 0xAA {
		t.Fatalf("read through overlay: %v %x", err, buf[0])
	}
	// ...but not on the inner device yet.
	if err := inner.ReadBlock(3, buf); err != nil || buf[0] != 0 {
		t.Fatalf("inner should be untouched before flush: %v %x", err, buf[0])
	}
	if err := d.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := inner.ReadBlock(3, buf); err != nil || buf[0] != 0xAA {
		t.Fatalf("inner after flush: %v %x", err, buf[0])
	}
}

func TestCrashDropsUnflushed(t *testing.T) {
	inner := NewMemDisk(512, 64)
	d := NewCrashDisk(inner, 1)
	d.WriteBlock(1, fill(0x11, 512))
	if err := d.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	d.WriteBlock(2, fill(0x22, 512))
	d.Crash()

	if err := d.Flush(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash flush: %v", err)
	}
	buf := make([]byte, 512)
	if err := d.ReadBlock(1, buf); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: %v", err)
	}
	// The durable state survives on the inner device.
	if err := inner.ReadBlock(1, buf); err != nil || buf[0] != 0x11 {
		t.Fatalf("flushed block lost: %v %x", err, buf[0])
	}
	if err := inner.ReadBlock(2, buf); err != nil || buf[0] != 0 {
		t.Fatalf("unflushed block leaked to stable storage: %v %x", err, buf[0])
	}
}

func TestCrashMidFlushPersistsSubset(t *testing.T) {
	inner := NewMemDisk(512, 64)
	d := NewCrashDisk(inner, 42)
	for i := int64(0); i < 10; i++ {
		d.WriteBlock(i, fill(byte(i+1), 512))
	}
	d.SetCrashAfter(5) // crash on the 5th persist step
	if err := d.Flush(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("flush should crash: %v", err)
	}
	if !d.Crashed() {
		t.Fatal("disk not marked crashed")
	}
	persisted := 0
	buf := make([]byte, 512)
	for i := int64(0); i < 10; i++ {
		inner.ReadBlock(i, buf)
		if buf[0] == byte(i+1) {
			persisted++
		}
	}
	if persisted == 0 || persisted == 10 {
		t.Fatalf("mid-flush crash persisted %d of 10 blocks; want a strict subset", persisted)
	}
}

func TestCrashDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []byte {
		inner := NewMemDisk(512, 64)
		d := NewCrashDisk(inner, seed)
		for i := int64(0); i < 8; i++ {
			d.WriteBlock(i, fill(byte(i+1), 512))
		}
		d.SetCrashAfter(4)
		d.Flush()
		state := make([]byte, 8)
		buf := make([]byte, 512)
		for i := int64(0); i < 8; i++ {
			inner.ReadBlock(i, buf)
			state[i] = buf[0]
		}
		return state
	}
	if !bytes.Equal(run(7), run(7)) {
		t.Fatal("same seed produced different crash states")
	}
}

func TestTornWrite(t *testing.T) {
	// With tearing on, the crashing step leaves a sector-granular
	// partial write: a prefix of new sectors, old data in the rest.
	inner := NewMemDisk(4096, 64)
	d := NewCrashDisk(inner, 11)
	d.SetTearWrites(true)
	d.WriteBlock(0, fill(0x0D, 4096)) // the old durable contents
	if err := d.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	d.WriteBlock(0, fill(0xBB, 4096))
	d.SetCrashAfter(1)
	if err := d.Flush(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("flush should crash: %v", err)
	}
	buf := make([]byte, 4096)
	inner.ReadBlock(0, buf)
	cut := 0
	for cut < 4096 && buf[cut] == 0xBB {
		cut++
	}
	if cut == 0 || cut == 4096 {
		t.Fatalf("torn write persisted %d bytes; want a strict prefix", cut)
	}
	if cut%512 != 0 {
		t.Fatalf("tear at byte %d is not sector-aligned", cut)
	}
	for i := cut; i < 4096; i++ {
		if buf[i] != 0x0D {
			t.Fatalf("old data not preserved past the tear at byte %d", i)
		}
	}
}

func TestTornWriteSectorDeviceAtomic(t *testing.T) {
	// A 512-byte-block device is sector-atomic: the crashing write is
	// dropped whole, never torn.
	inner := NewMemDisk(512, 8)
	d := NewCrashDisk(inner, 3)
	d.SetTearWrites(true)
	d.WriteBlock(0, fill(0x0D, 512))
	if err := d.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	d.WriteBlock(0, fill(0xBB, 512))
	d.SetCrashAfter(1)
	if err := d.Flush(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("flush should crash: %v", err)
	}
	buf := make([]byte, 512)
	inner.ReadBlock(0, buf)
	for i, b := range buf {
		if b != 0x0D {
			t.Fatalf("sector write was torn at byte %d (%x)", i, b)
		}
	}
}
