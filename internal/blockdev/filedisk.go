package blockdev

import (
	"fmt"
	"os"
	"sync"
)

// FileDisk is a block device backed by a file on the host filesystem,
// giving nasdd durable storage. Geometry is fixed at creation and
// validated on reopen via a small header block stored before block 0.
type FileDisk struct {
	mu        sync.Mutex
	f         *os.File
	blockSize int
	blocks    int64
}

// fileDiskHeader occupies the first headerSize bytes of the backing
// file; device blocks start after it.
const fileDiskMagic = "NASDBLK1"
const headerSize = 4096

// CreateFileDisk creates (or truncates) path as a block device with the
// given geometry.
func CreateFileDisk(path string, blockSize int, blocks int64) (*FileDisk, error) {
	if blockSize <= 0 || blocks <= 0 {
		return nil, fmt.Errorf("blockdev: invalid geometry %dx%d", blockSize, blocks)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerSize)
	copy(hdr, fileDiskMagic)
	putU64 := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			hdr[off+i] = byte(v >> (8 * i))
		}
	}
	putU64(8, uint64(blockSize))
	putU64(16, uint64(blocks))
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	// Reserve the full extent so geometry is stable.
	if err := f.Truncate(headerSize + int64(blockSize)*blocks); err != nil {
		f.Close()
		return nil, err
	}
	return &FileDisk{f: f, blockSize: blockSize, blocks: blocks}, nil
}

// OpenFileDisk opens an existing file-backed device, validating its
// header.
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o600)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("blockdev: reading header: %w", err)
	}
	if string(hdr[:8]) != fileDiskMagic {
		f.Close()
		return nil, fmt.Errorf("blockdev: %s is not a NASD block device", path)
	}
	getU64 := func(off int) uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(hdr[off+i]) << (8 * i)
		}
		return v
	}
	return &FileDisk{
		f:         f,
		blockSize: int(getU64(8)),
		blocks:    int64(getU64(16)),
	}, nil
}

// BlockSize implements Device.
func (d *FileDisk) BlockSize() int { return d.blockSize }

// Blocks implements Device.
func (d *FileDisk) Blocks() int64 { return d.blocks }

func (d *FileDisk) offset(i int64) int64 {
	return headerSize + i*int64(d.blockSize)
}

func (d *FileDisk) check(i int64, n int) error {
	if i < 0 || i >= d.blocks {
		return fmt.Errorf("%w: block %d of %d", ErrOutOfRange, i, d.blocks)
	}
	if n != d.blockSize {
		return fmt.Errorf("%w: %d != %d", ErrBadSize, n, d.blockSize)
	}
	return nil
}

// ReadBlock implements Device.
func (d *FileDisk) ReadBlock(i int64, buf []byte) error {
	if err := d.check(i, len(buf)); err != nil {
		return err
	}
	_, err := d.f.ReadAt(buf, d.offset(i))
	return err
}

// WriteBlock implements Device.
func (d *FileDisk) WriteBlock(i int64, data []byte) error {
	if err := d.check(i, len(data)); err != nil {
		return err
	}
	_, err := d.f.WriteAt(data, d.offset(i))
	return err
}

// Flush implements Device: fsync to stable storage.
func (d *FileDisk) Flush() error { return d.f.Sync() }

// Close releases the backing file.
func (d *FileDisk) Close() error { return d.f.Close() }

var _ Device = (*FileDisk)(nil)
