package blockdev

import "fmt"

// BlockRanger is implemented by devices that can move a contiguous
// multi-block extent in one call: one syscall on a file-backed disk,
// one lock acquisition on a memory disk, one pacer charge behind a
// throttle. buf/data must be a whole number of blocks; the extent
// [start, start+len/blockSize) must lie on the device.
type BlockRanger interface {
	// ReadBlocks fills buf from the blocks starting at start.
	ReadBlocks(start int64, buf []byte) error
	// WriteBlocks stores data to the blocks starting at start.
	WriteBlocks(start int64, data []byte) error
}

func checkRange(d Device, start int64, n int) (blocks int64, err error) {
	bs := d.BlockSize()
	if n%bs != 0 {
		return 0, fmt.Errorf("%w: range %d not a multiple of block size %d", ErrBadSize, n, bs)
	}
	blocks = int64(n / bs)
	if start < 0 || start+blocks > d.Blocks() {
		return 0, fmt.Errorf("%w: blocks [%d,%d) of %d", ErrOutOfRange, start, start+blocks, d.Blocks())
	}
	return blocks, nil
}

// ReadBlocks reads the contiguous extent starting at block start into
// buf (a whole number of blocks) from any device, using the device's
// native range read when it has one and a per-block loop otherwise.
func ReadBlocks(d Device, start int64, buf []byte) error {
	if br, ok := d.(BlockRanger); ok {
		return br.ReadBlocks(start, buf)
	}
	bs := d.BlockSize()
	blocks, err := checkRange(d, start, len(buf))
	if err != nil {
		return err
	}
	for b := int64(0); b < blocks; b++ {
		if err := d.ReadBlock(start+b, buf[int(b)*bs:int(b+1)*bs]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocks writes data (a whole number of blocks) to the contiguous
// extent starting at block start, using the device's native range write
// when it has one and a per-block loop otherwise.
func WriteBlocks(d Device, start int64, data []byte) error {
	if br, ok := d.(BlockRanger); ok {
		return br.WriteBlocks(start, data)
	}
	bs := d.BlockSize()
	blocks, err := checkRange(d, start, len(data))
	if err != nil {
		return err
	}
	for b := int64(0); b < blocks; b++ {
		if err := d.WriteBlock(start+b, data[int(b)*bs:int(b+1)*bs]); err != nil {
			return err
		}
	}
	return nil
}

// --- MemDisk: one gate + one lock for the whole extent --------------------

// ReadBlocks implements BlockRanger.
func (d *MemDisk) ReadBlocks(start int64, buf []byte) error {
	blocks, err := checkRange(d, start, len(buf))
	if err != nil {
		return err
	}
	d.gate()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrFailed
	}
	bs := d.blockSize
	for b := int64(0); b < blocks; b++ {
		i := start + b
		if err, ok := d.errOnce[i]; ok {
			delete(d.errOnce, i)
			return err
		}
		if d.corrupt[i] {
			return fmt.Errorf("%w: block %d", ErrCorrupt, i)
		}
		d.reads++
		dst := buf[int(b)*bs : int(b+1)*bs]
		if src, ok := d.data[i]; ok {
			copy(dst, src)
		} else {
			for j := range dst {
				dst[j] = 0
			}
		}
	}
	return nil
}

// WriteBlocks implements BlockRanger.
func (d *MemDisk) WriteBlocks(start int64, data []byte) error {
	blocks, err := checkRange(d, start, len(data))
	if err != nil {
		return err
	}
	d.gate()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrFailed
	}
	bs := d.blockSize
	for b := int64(0); b < blocks; b++ {
		i := start + b
		if err, ok := d.errOnce[i]; ok {
			delete(d.errOnce, i)
			return err
		}
		d.writes++
		dst, ok := d.data[i]
		if !ok {
			dst = make([]byte, bs)
			d.data[i] = dst
		}
		copy(dst, data[int(b)*bs:int(b+1)*bs])
		delete(d.corrupt, i)
	}
	return nil
}

// --- FileDisk: one syscall for the whole extent ---------------------------

// ReadBlocks implements BlockRanger.
func (d *FileDisk) ReadBlocks(start int64, buf []byte) error {
	if _, err := checkRange(d, start, len(buf)); err != nil {
		return err
	}
	_, err := d.f.ReadAt(buf, d.offset(start))
	return err
}

// WriteBlocks implements BlockRanger.
func (d *FileDisk) WriteBlocks(start int64, data []byte) error {
	if _, err := checkRange(d, start, len(data)); err != nil {
		return err
	}
	_, err := d.f.WriteAt(data, d.offset(start))
	return err
}

// --- Throttle: one charge (bytes dominate; perOp is charged once, as a
// single multi-block command) ----------------------------------------------

// ReadBlocks implements BlockRanger.
func (t *Throttle) ReadBlocks(start int64, buf []byte) error {
	t.pacer.Charge(len(buf))
	return ReadBlocks(t.dev, start, buf)
}

// WriteBlocks implements BlockRanger.
func (t *Throttle) WriteBlocks(start int64, data []byte) error {
	t.pacer.Charge(len(data))
	return WriteBlocks(t.dev, start, data)
}

// --- Stripe: split the extent into per-device contiguous runs -------------

// ReadBlocks implements BlockRanger.
func (s *Stripe) ReadBlocks(start int64, buf []byte) error {
	return s.rangeOp(start, len(buf), func(dev Device, phys int64, lo, hi int) error {
		return ReadBlocks(dev, phys, buf[lo:hi])
	})
}

// WriteBlocks implements BlockRanger.
func (s *Stripe) WriteBlocks(start int64, data []byte) error {
	return s.rangeOp(start, len(data), func(dev Device, phys int64, lo, hi int) error {
		return WriteBlocks(dev, phys, data[lo:hi])
	})
}

// rangeOp walks the extent in runs that stay within one stripe unit —
// the longest spans that are physically contiguous on one member — and
// applies op to each.
func (s *Stripe) rangeOp(start int64, n int, op func(dev Device, phys int64, lo, hi int) error) error {
	blocks, err := checkRange(s, start, n)
	if err != nil {
		return err
	}
	bs := s.blockSize
	for b := int64(0); b < blocks; {
		i := start + b
		dev, phys := s.Locate(i)
		// Run length: to the end of this stripe unit or the extent.
		run := s.unitBlocks - i%s.unitBlocks
		if run > blocks-b {
			run = blocks - b
		}
		lo := int(b) * bs
		hi := int(b+run) * bs
		if err := op(s.devs[dev], phys, lo, hi); err != nil {
			return err
		}
		b += run
	}
	return nil
}

var (
	_ BlockRanger = (*MemDisk)(nil)
	_ BlockRanger = (*FileDisk)(nil)
	_ BlockRanger = (*Throttle)(nil)
	_ BlockRanger = (*Stripe)(nil)
)
