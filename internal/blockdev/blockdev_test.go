package blockdev

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestMemDiskReadWriteRoundTrip(t *testing.T) {
	d := NewMemDisk(512, 100)
	data := bytes.Repeat([]byte{0xAB}, 512)
	if err := d.WriteBlock(7, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if err := d.ReadBlock(7, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("read != written")
	}
}

func TestMemDiskUnwrittenReadsZero(t *testing.T) {
	d := NewMemDisk(512, 10)
	buf := bytes.Repeat([]byte{0xFF}, 512)
	if err := d.ReadBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten block not zero")
		}
	}
}

func TestMemDiskBounds(t *testing.T) {
	d := NewMemDisk(512, 10)
	buf := make([]byte, 512)
	if err := d.ReadBlock(10, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read past end: %v", err)
	}
	if err := d.ReadBlock(-1, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative read: %v", err)
	}
	if err := d.WriteBlock(11, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write past end: %v", err)
	}
	if err := d.ReadBlock(0, make([]byte, 100)); !errors.Is(err, ErrBadSize) {
		t.Fatalf("short buffer: %v", err)
	}
}

func TestMemDiskWriteDoesNotAliasCaller(t *testing.T) {
	d := NewMemDisk(4, 4)
	data := []byte{1, 2, 3, 4}
	if err := d.WriteBlock(0, data); err != nil {
		t.Fatal(err)
	}
	data[0] = 99
	buf := make([]byte, 4)
	if err := d.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Fatal("device aliased caller buffer")
	}
}

func TestMemDiskFailAndHeal(t *testing.T) {
	d := NewMemDisk(512, 10)
	d.Fail()
	buf := make([]byte, 512)
	if err := d.ReadBlock(0, buf); !errors.Is(err, ErrFailed) {
		t.Fatalf("read on failed disk: %v", err)
	}
	if err := d.WriteBlock(0, buf); !errors.Is(err, ErrFailed) {
		t.Fatalf("write on failed disk: %v", err)
	}
	if err := d.Flush(); !errors.Is(err, ErrFailed) {
		t.Fatalf("flush on failed disk: %v", err)
	}
	d.Heal()
	if err := d.ReadBlock(0, buf); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
}

func TestMemDiskCorruptionAndHealByRewrite(t *testing.T) {
	d := NewMemDisk(512, 10)
	data := bytes.Repeat([]byte{1}, 512)
	if err := d.WriteBlock(5, data); err != nil {
		t.Fatal(err)
	}
	d.CorruptBlock(5)
	buf := make([]byte, 512)
	if err := d.ReadBlock(5, buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt read: %v", err)
	}
	if err := d.WriteBlock(5, data); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadBlock(5, buf); err != nil {
		t.Fatalf("read after rewrite: %v", err)
	}
}

func TestMemDiskFailNext(t *testing.T) {
	d := NewMemDisk(512, 10)
	injected := errors.New("transient")
	d.FailNext(2, injected)
	buf := make([]byte, 512)
	if err := d.ReadBlock(2, buf); !errors.Is(err, injected) {
		t.Fatalf("injected error not returned: %v", err)
	}
	if err := d.ReadBlock(2, buf); err != nil {
		t.Fatalf("error persisted: %v", err)
	}
}

func TestMemDiskStats(t *testing.T) {
	d := NewMemDisk(512, 10)
	buf := make([]byte, 512)
	_ = d.WriteBlock(0, buf)
	_ = d.WriteBlock(1, buf)
	_ = d.ReadBlock(0, buf)
	r, w := d.Stats()
	if r != 1 || w != 2 {
		t.Fatalf("stats = %d reads %d writes", r, w)
	}
	if d.AllocatedBlocks() != 2 {
		t.Fatalf("allocated = %d", d.AllocatedBlocks())
	}
}

func TestStripeGeometry(t *testing.T) {
	a := NewMemDisk(512, 100)
	b := NewMemDisk(512, 120)
	s, err := NewStripe([]Device{a, b}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Blocks() != 200 { // limited by smaller device
		t.Fatalf("blocks = %d", s.Blocks())
	}
	if s.BlockSize() != 512 {
		t.Fatalf("block size = %d", s.BlockSize())
	}
}

func TestStripeRejectsBadConfig(t *testing.T) {
	if _, err := NewStripe(nil, 8); err == nil {
		t.Fatal("empty device list accepted")
	}
	a := NewMemDisk(512, 10)
	b := NewMemDisk(1024, 10)
	if _, err := NewStripe([]Device{a, b}, 8); err == nil {
		t.Fatal("mismatched block sizes accepted")
	}
	if _, err := NewStripe([]Device{a}, 0); err == nil {
		t.Fatal("zero stripe unit accepted")
	}
}

func TestStripeLocateBijection(t *testing.T) {
	devs := []Device{NewMemDisk(512, 64), NewMemDisk(512, 64), NewMemDisk(512, 64)}
	s, err := NewStripe(devs, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[2]int64]int64)
	for i := int64(0); i < s.Blocks(); i++ {
		dev, phys := s.Locate(i)
		key := [2]int64{int64(dev), phys}
		if prev, dup := seen[key]; dup {
			t.Fatalf("blocks %d and %d both map to dev %d phys %d", prev, i, dev, phys)
		}
		seen[key] = i
		if phys < 0 || phys >= 64 {
			t.Fatalf("block %d maps to out-of-range phys %d", i, phys)
		}
	}
}

func TestStripeAlternatesDevices(t *testing.T) {
	devs := []Device{NewMemDisk(512, 64), NewMemDisk(512, 64)}
	s, _ := NewStripe(devs, 4)
	// Blocks 0-3 on dev 0, 4-7 on dev 1, 8-11 on dev 0, ...
	for i := int64(0); i < 16; i++ {
		dev, _ := s.Locate(i)
		want := int(i/4) % 2
		if dev != want {
			t.Fatalf("block %d on dev %d, want %d", i, dev, want)
		}
	}
}

func TestStripeReadWriteThrough(t *testing.T) {
	devs := []Device{NewMemDisk(512, 64), NewMemDisk(512, 64)}
	s, _ := NewStripe(devs, 1)
	data := bytes.Repeat([]byte{7}, 512)
	if err := s.WriteBlock(3, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if err := s.ReadBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("stripe round trip failed")
	}
	// Block 3 with unit 1 lands on dev 1 phys 1.
	if err := devs[1].ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("data not on expected underlying device")
	}
}

func TestStripeBounds(t *testing.T) {
	s, _ := NewStripe([]Device{NewMemDisk(512, 4)}, 1)
	buf := make([]byte, 512)
	if err := s.ReadBlock(4, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read past end: %v", err)
	}
	if err := s.WriteBlock(-1, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative write: %v", err)
	}
}

func TestStripeFlushPropagatesFailure(t *testing.T) {
	a := NewMemDisk(512, 4)
	b := NewMemDisk(512, 4)
	s, _ := NewStripe([]Device{a, b}, 1)
	b.Fail()
	if err := s.Flush(); !errors.Is(err, ErrFailed) {
		t.Fatalf("flush: %v", err)
	}
}

// Property: for random geometry, writing random data to random blocks
// and reading it back always matches (read-after-write).
func TestMemDiskReadAfterWriteProperty(t *testing.T) {
	d := NewMemDisk(64, 32)
	f := func(block uint8, fill byte) bool {
		i := int64(block % 32)
		data := bytes.Repeat([]byte{fill}, 64)
		if err := d.WriteBlock(i, data); err != nil {
			return false
		}
		buf := make([]byte, 64)
		if err := d.ReadBlock(i, buf); err != nil {
			return false
		}
		return bytes.Equal(buf, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMemDiskHangAndResume(t *testing.T) {
	d := NewMemDisk(512, 10)
	if err := d.WriteBlock(1, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	d.Hang()
	done := make(chan error, 2)
	go func() { done <- d.ReadBlock(1, make([]byte, 512)) }()
	go func() { done <- d.WriteBlock(2, make([]byte, 512)) }()
	select {
	case err := <-done:
		t.Fatalf("operation completed on a hung device: %v", err)
	case <-time.After(50 * time.Millisecond):
		// Wedged, as a hung drive should be: no error, no progress.
	}
	d.Resume()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("operation failed after resume: %v", err)
			}
		case <-time.After(time.Second):
			t.Fatal("operation still blocked after Resume")
		}
	}
	// A resumed device serves new traffic normally.
	if err := d.ReadBlock(1, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
}

func TestMemDiskHangResumeIdempotent(t *testing.T) {
	d := NewMemDisk(512, 10)
	d.Resume() // resume without hang is a no-op
	d.Hang()
	d.Hang() // double hang keeps one gate
	d.Resume()
	if err := d.ReadBlock(0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
}
