package blockdev

import (
	"errors"
	"fmt"
	"sync"
)

// Device is a fixed-geometry block device. Implementations must be safe
// for concurrent use.
type Device interface {
	// BlockSize returns the size of every block in bytes.
	BlockSize() int
	// Blocks returns the number of blocks on the device.
	Blocks() int64
	// ReadBlock fills buf (exactly BlockSize bytes) from block i.
	ReadBlock(i int64, buf []byte) error
	// WriteBlock stores data (exactly BlockSize bytes) to block i.
	WriteBlock(i int64, data []byte) error
	// Flush forces any buffered writes to stable storage.
	Flush() error
}

// Errors returned by devices.
var (
	ErrOutOfRange = errors.New("blockdev: block out of range")
	ErrBadSize    = errors.New("blockdev: buffer size != block size")
	ErrFailed     = errors.New("blockdev: device failed")
	ErrCorrupt    = errors.New("blockdev: block corrupt")
)

// MemDisk is an in-memory block device. Unwritten blocks read as zeros.
// It supports fault injection for failure-path tests: whole-device
// crash (Fail/Heal), whole-device hang (Hang/Resume), per-block
// corruption, and transient per-block errors.
type MemDisk struct {
	mu        sync.RWMutex
	blockSize int
	blocks    int64
	data      map[int64][]byte
	failed    bool
	hung      chan struct{} // non-nil while hung; closed by Resume
	corrupt   map[int64]bool
	errOnce   map[int64]error

	reads, writes int64
}

// NewMemDisk returns a MemDisk with the given geometry.
func NewMemDisk(blockSize int, blocks int64) *MemDisk {
	if blockSize <= 0 || blocks <= 0 {
		panic("blockdev: invalid geometry")
	}
	return &MemDisk{
		blockSize: blockSize,
		blocks:    blocks,
		data:      make(map[int64][]byte),
		corrupt:   make(map[int64]bool),
		errOnce:   make(map[int64]error),
	}
}

// BlockSize implements Device.
func (d *MemDisk) BlockSize() int { return d.blockSize }

// Blocks implements Device.
func (d *MemDisk) Blocks() int64 { return d.blocks }

func (d *MemDisk) check(i int64, n int) error {
	if d.failed {
		return ErrFailed
	}
	if i < 0 || i >= d.blocks {
		return fmt.Errorf("%w: block %d of %d", ErrOutOfRange, i, d.blocks)
	}
	if n != d.blockSize {
		return fmt.Errorf("%w: %d != %d", ErrBadSize, n, d.blockSize)
	}
	return nil
}

// gate blocks while the device is hung. It runs before the data lock
// is taken so a wedged drive stalls new requests without deadlocking
// the fault-control methods.
func (d *MemDisk) gate() {
	d.mu.RLock()
	ch := d.hung
	d.mu.RUnlock()
	if ch != nil {
		<-ch
	}
}

// ReadBlock implements Device.
func (d *MemDisk) ReadBlock(i int64, buf []byte) error {
	d.gate()
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(i, len(buf)); err != nil {
		return err
	}
	if err, ok := d.errOnce[i]; ok {
		delete(d.errOnce, i)
		return err
	}
	if d.corrupt[i] {
		return fmt.Errorf("%w: block %d", ErrCorrupt, i)
	}
	d.reads++
	if b, ok := d.data[i]; ok {
		copy(buf, b)
	} else {
		for j := range buf {
			buf[j] = 0
		}
	}
	return nil
}

// WriteBlock implements Device.
func (d *MemDisk) WriteBlock(i int64, data []byte) error {
	d.gate()
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(i, len(data)); err != nil {
		return err
	}
	if err, ok := d.errOnce[i]; ok {
		delete(d.errOnce, i)
		return err
	}
	d.writes++
	b, ok := d.data[i]
	if !ok {
		b = make([]byte, d.blockSize)
		d.data[i] = b
	}
	copy(b, data)
	delete(d.corrupt, i) // rewriting heals corruption
	return nil
}

// Flush implements Device (a no-op for memory).
func (d *MemDisk) Flush() error {
	d.gate()
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.failed {
		return ErrFailed
	}
	return nil
}

// Fail crashes the device: every subsequent operation returns
// ErrFailed (fail-stop, immediately detectable).
func (d *MemDisk) Fail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = true
}

// Heal revives a Failed device.
func (d *MemDisk) Heal() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = false
}

// Hang wedges the device: subsequent operations block — neither
// failing nor completing — until Resume. This models a drive that
// stops answering, the failure mode only timeouts can detect, as
// opposed to Fail's fail-stop errors.
func (d *MemDisk) Hang() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.hung == nil {
		d.hung = make(chan struct{})
	}
}

// Resume releases every operation blocked by Hang.
func (d *MemDisk) Resume() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.hung != nil {
		close(d.hung)
		d.hung = nil
	}
}

// CorruptBlock marks block i corrupt: reads fail until it is rewritten.
func (d *MemDisk) CorruptBlock(i int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.corrupt[i] = true
}

// FailNext injects err on the next access to block i only.
func (d *MemDisk) FailNext(i int64, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.errOnce[i] = err
}

// Stats returns cumulative successful read and write counts.
func (d *MemDisk) Stats() (reads, writes int64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.reads, d.writes
}

// AllocatedBlocks returns how many blocks hold written data (for memory
// accounting in tests).
func (d *MemDisk) AllocatedBlocks() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.data)
}

// Stripe is a striping driver presenting several devices as one, as in
// the paper's prototype ("two physical drives managed by a software
// striping driver"). Blocks are distributed round-robin in units of
// unitBlocks: logical block i lives on device (i/unit)%n.
type Stripe struct {
	devs       []Device
	unitBlocks int64
	blockSize  int
	blocks     int64
}

// NewStripe builds a striping driver over devs with the given stripe
// unit in blocks. All devices must share a block size; capacity is
// limited by the smallest device.
func NewStripe(devs []Device, unitBlocks int64) (*Stripe, error) {
	if len(devs) == 0 {
		return nil, errors.New("blockdev: stripe needs at least one device")
	}
	if unitBlocks <= 0 {
		return nil, errors.New("blockdev: stripe unit must be positive")
	}
	bs := devs[0].BlockSize()
	minBlocks := devs[0].Blocks()
	for _, d := range devs[1:] {
		if d.BlockSize() != bs {
			return nil, errors.New("blockdev: stripe devices disagree on block size")
		}
		if d.Blocks() < minBlocks {
			minBlocks = d.Blocks()
		}
	}
	return &Stripe{
		devs:       devs,
		unitBlocks: unitBlocks,
		blockSize:  bs,
		blocks:     minBlocks * int64(len(devs)),
	}, nil
}

// BlockSize implements Device.
func (s *Stripe) BlockSize() int { return s.blockSize }

// Blocks implements Device.
func (s *Stripe) Blocks() int64 { return s.blocks }

// Locate maps a logical block to (device index, physical block). It is
// exported so tests can verify the mapping is a bijection.
func (s *Stripe) Locate(i int64) (dev int, phys int64) {
	unit := i / s.unitBlocks
	within := i % s.unitBlocks
	dev = int(unit % int64(len(s.devs)))
	phys = (unit/int64(len(s.devs)))*s.unitBlocks + within
	return dev, phys
}

// ReadBlock implements Device.
func (s *Stripe) ReadBlock(i int64, buf []byte) error {
	if i < 0 || i >= s.blocks {
		return fmt.Errorf("%w: block %d of %d", ErrOutOfRange, i, s.blocks)
	}
	dev, phys := s.Locate(i)
	return s.devs[dev].ReadBlock(phys, buf)
}

// WriteBlock implements Device.
func (s *Stripe) WriteBlock(i int64, data []byte) error {
	if i < 0 || i >= s.blocks {
		return fmt.Errorf("%w: block %d of %d", ErrOutOfRange, i, s.blocks)
	}
	dev, phys := s.Locate(i)
	return s.devs[dev].WriteBlock(phys, data)
}

// Flush implements Device.
func (s *Stripe) Flush() error {
	for _, d := range s.devs {
		if err := d.Flush(); err != nil {
			return err
		}
	}
	return nil
}
