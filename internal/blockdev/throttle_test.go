package blockdev

import (
	"bytes"
	"testing"
	"time"
)

func TestThrottlePassesDataThrough(t *testing.T) {
	mem := NewMemDisk(512, 64)
	dev := NewThrottle(mem, 0, 0) // unlimited: pure pass-through
	want := bytes.Repeat([]byte{0xAB}, 512)
	if err := dev.WriteBlock(3, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := dev.ReadBlock(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("throttle corrupted data")
	}
	if dev.BlockSize() != 512 || dev.Blocks() != 64 {
		t.Fatal("throttle changed geometry")
	}
	if err := dev.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestThrottlePacesTransfers(t *testing.T) {
	mem := NewMemDisk(4096, 256)
	// 1 MB/s: 64 blocks of 4 KB is 256 KB, the model says 250 ms.
	dev := NewThrottle(mem, 1<<20, 0)
	buf := make([]byte, 4096)
	start := time.Now()
	for i := int64(0); i < 64; i++ {
		if err := dev.ReadBlock(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if el := time.Since(start); el < 200*time.Millisecond {
		t.Fatalf("256 KB at 1 MB/s took only %v", el)
	}
}

func TestThrottlePropagatesErrors(t *testing.T) {
	mem := NewMemDisk(512, 8)
	dev := NewThrottle(mem, 0, 0)
	mem.Fail()
	if err := dev.ReadBlock(0, make([]byte, 512)); err == nil {
		t.Fatal("throttle swallowed device failure")
	}
}
