// Package blockdev defines the block-device abstraction the NASD object
// system is built on, with an in-memory implementation, fault injection
// for failure testing, a throttled service-time model, and a striping
// driver mirroring the paper's prototype (Section 4.2: two Seagate
// Medallists behind a software striping driver).
//
// Instrument wraps any Device with telemetry: per-direction I/O and
// latency counters, a queue-depth gauge, and cumulative busy time
// (blockdev.* in DESIGN.md §5). The busy-time clock is what the drive
// uses to attribute each request's media component when reproducing
// the Table 1 cost split.
package blockdev
