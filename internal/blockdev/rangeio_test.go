package blockdev

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func fillPattern(b []byte, seed byte) {
	for i := range b {
		b[i] = seed + byte(i%251)
	}
}

// rangeDevices enumerates every BlockRanger implementation plus a
// plain-interface fallback wrapper, so each case exercises both the
// native range path and the per-block loop.
func rangeDevices(t *testing.T) map[string]Device {
	t.Helper()
	const bs, blocks = 512, 64
	fd, err := CreateFileDisk(filepath.Join(t.TempDir(), "disk"), bs, blocks)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fd.Close() })
	d1 := NewMemDisk(bs, blocks)
	d2 := NewMemDisk(bs, blocks)
	stripe, err := NewStripe([]Device{d1, d2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Device{
		"memdisk":  NewMemDisk(bs, blocks),
		"filedisk": fd,
		"stripe":   stripe,
		"throttle": NewThrottle(NewMemDisk(bs, blocks), 0, 0),
		"instr":    Instrument(NewMemDisk(bs, blocks), nil),
		"fallback": opaqueDevice{NewMemDisk(bs, blocks)},
	}
}

// opaqueDevice hides any BlockRanger implementation, forcing the
// package-level fallback loop.
type opaqueDevice struct{ d Device }

func (o opaqueDevice) BlockSize() int                      { return o.d.BlockSize() }
func (o opaqueDevice) Blocks() int64                       { return o.d.Blocks() }
func (o opaqueDevice) ReadBlock(i int64, buf []byte) error { return o.d.ReadBlock(i, buf) }
func (o opaqueDevice) WriteBlock(i int64, b []byte) error  { return o.d.WriteBlock(i, b) }
func (o opaqueDevice) Flush() error                        { return o.d.Flush() }

func TestRangeIORoundTrip(t *testing.T) {
	for name, dev := range rangeDevices(t) {
		t.Run(name, func(t *testing.T) {
			bs := dev.BlockSize()
			// Extent crossing several stripe units and starting mid-device.
			data := make([]byte, 11*bs)
			fillPattern(data, 3)
			if err := WriteBlocks(dev, 5, data); err != nil {
				t.Fatalf("WriteBlocks: %v", err)
			}
			got := make([]byte, len(data))
			if err := ReadBlocks(dev, 5, got); err != nil {
				t.Fatalf("ReadBlocks: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("range round-trip mismatch")
			}
			// Per-block view must agree with the range view.
			one := make([]byte, bs)
			for b := 0; b < 11; b++ {
				if err := dev.ReadBlock(5+int64(b), one); err != nil {
					t.Fatalf("ReadBlock %d: %v", b, err)
				}
				if !bytes.Equal(one, data[b*bs:(b+1)*bs]) {
					t.Fatalf("block %d: range write not visible to block read", b)
				}
			}
		})
	}
}

func TestRangeIOBounds(t *testing.T) {
	for name, dev := range rangeDevices(t) {
		t.Run(name, func(t *testing.T) {
			bs := dev.BlockSize()
			if err := ReadBlocks(dev, dev.Blocks()-1, make([]byte, 2*bs)); err == nil {
				t.Error("read past end of device succeeded")
			}
			if err := WriteBlocks(dev, -1, make([]byte, bs)); err == nil {
				t.Error("write before start of device succeeded")
			}
			if err := ReadBlocks(dev, 0, make([]byte, bs+1)); err == nil {
				t.Error("non-block-multiple range succeeded")
			}
		})
	}
}

func TestRangeIOFaults(t *testing.T) {
	const bs = 512
	d := NewMemDisk(bs, 16)
	buf := make([]byte, 4*bs)
	d.CorruptBlock(6)
	if err := d.ReadBlocks(4, buf); err == nil {
		t.Error("range read through corrupt block succeeded")
	}
	d.Fail()
	if err := d.ReadBlocks(0, buf); err == nil {
		t.Error("range read on failed device succeeded")
	}
	if err := d.WriteBlocks(0, buf); err == nil {
		t.Error("range write on failed device succeeded")
	}
	d.Heal()
	if err := d.WriteBlocks(4, buf); err != nil {
		t.Errorf("range write over healed corrupt block: %v", err)
	}
	if err := d.ReadBlocks(4, buf); err != nil {
		t.Errorf("rewrite did not heal corruption: %v", err)
	}
}

func TestStripeRangeSplitsRuns(t *testing.T) {
	const bs, unit = 512, 4
	d1 := NewMemDisk(bs, 64)
	d2 := NewMemDisk(bs, 64)
	s, err := NewStripe([]Device{d1, d2}, unit)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 16*bs) // four full units, alternating devices
	fillPattern(data, 9)
	if err := s.WriteBlocks(2, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	for b := 0; b < 16; b++ {
		if err := s.ReadBlock(2+int64(b), got[b*bs:(b+1)*bs]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, data) {
		t.Fatal("stripe range write scattered incorrectly")
	}
}

func TestFileDiskRangePersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk")
	fd, err := CreateFileDisk(path, 512, 32)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 8*512)
	fillPattern(data, 1)
	if err := fd.WriteBlocks(3, data); err != nil {
		t.Fatal(err)
	}
	if err := fd.Close(); err != nil {
		t.Fatal(err)
	}
	fd2, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fd2.Close()
	got := make([]byte, len(data))
	if err := fd2.ReadBlocks(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("range write not durable across reopen")
	}
	_ = os.Remove(path)
}
