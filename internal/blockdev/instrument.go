package blockdev

import (
	"strconv"
	"sync/atomic"
	"time"

	"nasd/internal/telemetry"
)

// Instrumented wraps a Device with media-level observability: queue
// depth (operations currently inside the device), cumulative busy time,
// per-operation latency histograms, and read/write counts. It is the
// measurement point for the "media" component of the paper's Table 1
// cost split — the drive subtracts the device's busy-time delta across
// a request from the request's total service time to separate
// object-system work from media work.
type Instrumented struct {
	dev   Device
	depth atomic.Int64
	busy  atomic.Int64 // cumulative nanoseconds inside the device

	reads   *telemetry.Counter
	writes  *telemetry.Counter
	readNS  *telemetry.Histogram
	writeNS *telemetry.Histogram

	spans *telemetry.SpanLog
	cur   atomic.Pointer[telemetry.SpanContext]
}

// Instrument wraps dev, publishing metrics into reg under the
// "blockdev." prefix. reg may be nil when only BusyNanos/QueueDepth are
// wanted.
func Instrument(dev Device, reg *telemetry.Registry) *Instrumented {
	i := &Instrumented{dev: dev}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	i.reads = reg.Counter("blockdev.reads")
	i.writes = reg.Counter("blockdev.writes")
	i.readNS = reg.Histogram("blockdev.read_ns")
	i.writeNS = reg.Histogram("blockdev.write_ns")
	reg.Func("blockdev.queue_depth", i.QueueDepth)
	reg.Func("blockdev.busy_ns", i.BusyNanos)
	return i
}

// WithSpanLog makes the device record one span per block I/O into l
// whenever a trace context is set (see SetTraceContext). Returns i for
// chaining.
func (i *Instrumented) WithSpanLog(l *telemetry.SpanLog) *Instrumented {
	i.spans = l
	return i
}

// SetTraceContext sets the ambient span context that per-I/O spans
// attach to; a zero context clears it. The object store has no
// per-request plumbing down to the device, so the drive sets this
// around request dispatch instead. Like the busy-time delta used for
// the media split, attribution is exact when requests are serialized at
// the media and approximate when they interleave.
func (i *Instrumented) SetTraceContext(sc telemetry.SpanContext) {
	if sc.TraceID == 0 {
		i.cur.Store(nil)
		return
	}
	i.cur.Store(&sc)
}

// emitSpan records one completed block-I/O span when tracing is active.
func (i *Instrumented) emitSpan(name string, block int64, start time.Time, d time.Duration) {
	if i.spans == nil {
		return
	}
	sc := i.cur.Load()
	if sc == nil {
		return
	}
	i.spans.Emit(telemetry.SpanRecord{
		TraceID: sc.TraceID,
		SpanID:  telemetry.NextSpanID(),
		Parent:  sc.SpanID,
		Name:    name,
		StartNS: start.UnixNano(),
		EndNS:   start.UnixNano() + int64(d),
		Annotations: []telemetry.Annotation{
			{Key: "block", Value: strconv.FormatInt(block, 10)},
		},
	})
}

// BusyNanos returns cumulative nanoseconds spent inside the wrapped
// device across all operations. Concurrent operations accumulate
// concurrently, so this is device busy-time in the utilization-law
// sense only when access is serialized (one spindle), which is how the
// object store drives it.
func (i *Instrumented) BusyNanos() int64 { return i.busy.Load() }

// QueueDepth returns the number of operations currently inside the
// device.
func (i *Instrumented) QueueDepth() int64 { return i.depth.Load() }

// BlockSize implements Device.
func (i *Instrumented) BlockSize() int { return i.dev.BlockSize() }

// Blocks implements Device.
func (i *Instrumented) Blocks() int64 { return i.dev.Blocks() }

// ReadBlock implements Device.
func (i *Instrumented) ReadBlock(b int64, buf []byte) error {
	i.depth.Add(1)
	start := time.Now()
	err := i.dev.ReadBlock(b, buf)
	d := time.Since(start)
	i.busy.Add(int64(d))
	i.depth.Add(-1)
	i.readNS.ObserveDuration(d)
	i.emitSpan("blockdev.read", b, start, d)
	if err == nil {
		i.reads.Inc()
	}
	return err
}

// WriteBlock implements Device.
func (i *Instrumented) WriteBlock(b int64, data []byte) error {
	i.depth.Add(1)
	start := time.Now()
	err := i.dev.WriteBlock(b, data)
	d := time.Since(start)
	i.busy.Add(int64(d))
	i.depth.Add(-1)
	i.writeNS.ObserveDuration(d)
	i.emitSpan("blockdev.write", b, start, d)
	if err == nil {
		i.writes.Inc()
	}
	return err
}

// Flush implements Device.
func (i *Instrumented) Flush() error {
	i.depth.Add(1)
	start := time.Now()
	err := i.dev.Flush()
	i.busy.Add(int64(time.Since(start)))
	i.depth.Add(-1)
	return err
}

// ReadBlocks implements BlockRanger: one queue-depth excursion and one
// span for the whole extent, counted as its block count of reads.
func (i *Instrumented) ReadBlocks(start64 int64, buf []byte) error {
	i.depth.Add(1)
	start := time.Now()
	err := ReadBlocks(i.dev, start64, buf)
	d := time.Since(start)
	i.busy.Add(int64(d))
	i.depth.Add(-1)
	i.readNS.ObserveDuration(d)
	i.emitSpan("blockdev.readv", start64, start, d)
	if err == nil {
		i.reads.Add(uint64(len(buf) / i.dev.BlockSize()))
	}
	return err
}

// WriteBlocks implements BlockRanger.
func (i *Instrumented) WriteBlocks(start64 int64, data []byte) error {
	i.depth.Add(1)
	start := time.Now()
	err := WriteBlocks(i.dev, start64, data)
	d := time.Since(start)
	i.busy.Add(int64(d))
	i.depth.Add(-1)
	i.writeNS.ObserveDuration(d)
	i.emitSpan("blockdev.writev", start64, start, d)
	if err == nil {
		i.writes.Add(uint64(len(data) / i.dev.BlockSize()))
	}
	return err
}

var _ BlockRanger = (*Instrumented)(nil)
