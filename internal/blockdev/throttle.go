package blockdev

import (
	"time"

	"nasd/internal/simtime"
)

// Throttle wraps a Device with a service-time model: a per-operation
// command overhead plus bytes/bytesPerSec of media transfer time,
// serialized like a single spindle (concurrent callers queue). It lets
// in-memory rigs reproduce the latency structure of real drives — the
// paper's prototype moved data off a Seagate Medallist at single-digit
// MB/s — so that overlap optimisations (striping, pipelining) show
// their effect without hardware.
type Throttle struct {
	dev   Device
	pacer *simtime.Pacer
}

// NewThrottle models dev as a medium moving bytesPerSec with perOp
// command overhead per block operation. bytesPerSec <= 0 means
// unlimited bandwidth (only perOp applies).
func NewThrottle(dev Device, bytesPerSec int64, perOp time.Duration) *Throttle {
	return &Throttle{dev: dev, pacer: simtime.NewPacer(bytesPerSec, perOp)}
}

// BlockSize implements Device.
func (t *Throttle) BlockSize() int { return t.dev.BlockSize() }

// Blocks implements Device.
func (t *Throttle) Blocks() int64 { return t.dev.Blocks() }

// ReadBlock implements Device, charging one operation of service time.
func (t *Throttle) ReadBlock(i int64, buf []byte) error {
	t.pacer.Charge(len(buf))
	return t.dev.ReadBlock(i, buf)
}

// WriteBlock implements Device, charging one operation of service time.
func (t *Throttle) WriteBlock(i int64, data []byte) error {
	t.pacer.Charge(len(data))
	return t.dev.WriteBlock(i, data)
}

// Flush implements Device.
func (t *Throttle) Flush() error { return t.dev.Flush() }
