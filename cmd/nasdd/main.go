// Command nasdd runs a NASD drive daemon: an object store served over
// TCP with cryptographic capability enforcement.
//
// Usage:
//
//	nasdd -listen 127.0.0.1:7070 -id 1 -master <hex key> [-blocks 65536] [-insecure] [-metrics 127.0.0.1:7071]
//
// The master key (64 hex characters) is the root of the drive's key
// hierarchy; the file manager that manages this drive must hold the
// same key. Generate one with: nasdctl genkey
//
// With -path the store is backed by a file on disk and survives
// restarts (the drive formats the file on first use and reopens it
// thereafter); without it, the store lives in memory. Reopening runs
// mount-time journal recovery (DESIGN.md §7) — committed metadata
// survives a crash or power cut — and logs a one-line recovery
// summary when the volume did not open clean. See OPERATIONS.md for
// the operator runbook.
//
// With -metrics the daemon additionally serves plain-JSON
// observability over HTTP: GET /metrics (the full telemetry snapshot:
// per-op counters and latency histograms, cache hit rates, media
// counters; add ?partition=P for one tenant's slice), GET /healthz
// (liveness + uptime), GET /trace?n=N (the last N served requests),
// GET /trace?trace=ID (every span of one trace), and GET
// /events?n=N&min=SEV (the drive's structured event log: starts,
// recoveries, compactions). Adding -pprof exposes the standard
// net/http/pprof profiling handlers under /debug/pprof/ on the same
// server. The same data is available over the NASD interface itself
// via `nasdctl stats`, `nasdctl trace`, and `nasdctl events`; see
// `nasdctl top` for a whole-fleet view.
//
// -trace-slow sets the slow-op threshold: a request whose root span
// runs at least that long has its whole span tree retained past ring
// wraparound, so `nasdctl trace` can still reconstruct it later.
//
// -qos arms the per-tenant overload-control plane (DESIGN.md §10):
// data requests pass a bounded admission queue, per-tenant token
// buckets, and WDRR fair scheduling keyed by the capability's
// partition before reaching media; -qos-queue, -qos-tenant-queue,
// -qos-rate, -qos-burst, -qos-weights, and -qos-shed tune it, and
// -rpc-queue bounds each connection's pending requests. Rejected work
// leaves as a typed retry-later reply with a retry-after hint that
// well-behaved clients pace against. See the OPERATIONS.md overload
// runbook for tuning under incident.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"strconv"
	"strings"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/object"
	"nasd/internal/qos"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// parseWeights turns "1=3,2=1" into WDRR weights keyed by the tenant
// key the classifier assigns (capability.TenantKey of the partition).
// Partitions may be written bare ("1=3") or in the "part.1" form the
// stats/top tenant tables print, so the value an operator sees is the
// value the flag takes.
func parseWeights(s string) (map[string]int64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int64)
	for _, pair := range strings.Split(s, ",") {
		ps, ws, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("%q is not PART=W", pair)
		}
		ps = strings.TrimPrefix(ps, "part.")
		p, err := strconv.ParseUint(ps, 10, 16)
		if err != nil {
			return nil, fmt.Errorf("partition %q: %v", ps, err)
		}
		w, err := strconv.ParseInt(ws, 10, 64)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("weight %q: must be a positive integer", ws)
		}
		out[capability.TenantKey(uint16(p))] = w
	}
	return out, nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "TCP listen address")
	id := flag.Uint64("id", 1, "drive identity (baked into capabilities)")
	masterHex := flag.String("master", "", "master key, 64 hex chars (required unless -insecure)")
	blocks := flag.Int64("blocks", 65536, "device size in 4 KB blocks")
	path := flag.String("path", "", "backing file for durable storage (empty = in-memory)")
	insecure := flag.Bool("insecure", false, "disable capability enforcement (the paper's measurement mode)")
	backend := flag.String("backend", "classic", "default storage engine for new partitions: classic or needle")
	metricsAddr := flag.String("metrics", "", "HTTP observability address for /metrics, /healthz, /trace (empty = disabled)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof handlers on the -metrics server")
	traceSlow := flag.Duration("trace-slow", 0, "retain full span trees for requests at least this slow (0 = disabled)")
	qosOn := flag.Bool("qos", false, "enable the per-tenant QoS plane: admission, fair queueing, deadline shedding")
	qosConc := flag.Int("qos-concurrency", 0, "QoS executor width pulling from the fair queues (0 = default 4)")
	qosQueue := flag.Int("qos-queue", 0, "QoS global admission queue bound (0 = default 256)")
	qosTenantQueue := flag.Int("qos-tenant-queue", 0, "QoS per-tenant queue bound (0 = global/4)")
	qosRate := flag.Float64("qos-rate", 0, "QoS per-tenant token refill rate, cost units/sec (0 = no rate limit)")
	qosBurst := flag.Float64("qos-burst", 0, "QoS per-tenant token bucket depth (0 = 2x rate)")
	qosWeights := flag.String("qos-weights", "", "QoS WDRR weights as PART=W pairs, e.g. 1=3,2=1 or part.1=3,part.2=1 (unlisted tenants weigh 1)")
	qosShed := flag.Bool("qos-shed", true, "QoS deadline-aware shedding: drop requests whose deadline cannot be met before media time")
	rpcQueue := flag.Int("rpc-queue", 0, "per-connection pending-request cap; beyond it requests are rejected with retry-later (0 = block)")
	faultDrop := flag.Float64("fault-drop", 0, "fault injection: drop each sent message with this probability (0 = off)")
	faultDup := flag.Float64("fault-dup", 0, "fault injection: duplicate each sent message with this probability (0 = off)")
	faultDelay := flag.Duration("fault-delay", 0, "fault injection: delay every sent message by this much (0 = off)")
	faultSeed := flag.Int64("fault-seed", 1, "fault injection: seed for the deterministic fault schedule")
	flag.Parse()

	var master crypt.Key
	if *masterHex == "" {
		if !*insecure {
			fmt.Fprintln(os.Stderr, "nasdd: -master required (or pass -insecure); generate with: nasdctl genkey")
			os.Exit(2)
		}
		master = crypt.NewRandomKey()
	} else {
		raw, err := hex.DecodeString(*masterHex)
		if err != nil {
			log.Fatalf("nasdd: bad -master: %v", err)
		}
		master, err = crypt.KeyFromBytes(raw)
		if err != nil {
			log.Fatalf("nasdd: bad -master: %v", err)
		}
	}

	var dev blockdev.Device
	fresh := true
	if *path == "" {
		dev = blockdev.NewMemDisk(4096, *blocks)
	} else if _, statErr := os.Stat(*path); statErr == nil {
		fd, err := blockdev.OpenFileDisk(*path)
		if err != nil {
			log.Fatalf("nasdd: %v", err)
		}
		dev = fd
		fresh = false
	} else {
		fd, err := blockdev.CreateFileDisk(*path, 4096, *blocks)
		if err != nil {
			log.Fatalf("nasdd: %v", err)
		}
		dev = fd
	}

	// One registry spans the media, the object system, and the RPC
	// plane, so a single snapshot carries the whole Table 1-style
	// breakdown.
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanLog(telemetry.DefaultSpanLogSize)
	if *traceSlow > 0 {
		spans.SetSlowThreshold(*traceSlow)
	}
	idev := blockdev.Instrument(dev, reg).WithSpanLog(spans)
	defBackend, err := object.ParseBackendKind(*backend)
	if err != nil {
		log.Fatalf("nasdd: %v", err)
	}
	cfg := drive.Config{ID: *id, Master: master, Secure: !*insecure, Metrics: reg, Media: idev, Spans: spans}
	cfg.Store.DefaultBackend = defBackend

	var drv *drive.Drive
	if fresh {
		drv, err = drive.NewFormat(idev, cfg)
	} else {
		drv, err = drive.Open(idev, cfg)
	}
	if err != nil {
		log.Fatalf("nasdd: attach: %v", err)
	}
	if ri := drv.Store().RecoveryInfo(); ri != (object.RecoveryInfo{}) {
		log.Printf("nasdd: recovery: replayed %d journal records, discarded %d torn tails, repaired %d refcounts in %v",
			ri.Replayed, ri.TornTails, ri.RefRepairs, ri.Duration)
	}
	l, err := rpc.ListenTCP(*listen)
	if err != nil {
		log.Fatalf("nasdd: listen: %v", err)
	}
	mode := "secure"
	if *insecure {
		mode = "INSECURE"
	}
	var lis rpc.Listener = l
	if *faultDrop > 0 || *faultDup > 0 || *faultDelay > 0 {
		// Chaos mode: every accepted connection's sends run under a
		// deterministic fault schedule, so client retry/reconnect
		// behavior can be exercised against a real TCP daemon.
		faults := rpc.NewFaults(*faultSeed)
		faults.DropRate(*faultDrop)
		faults.DuplicateRate(*faultDup)
		faults.Delay(*faultDelay)
		lis = faults.WrapListener(l)
		log.Printf("nasdd: FAULT INJECTION armed: drop=%.3f dup=%.3f delay=%v seed=%d",
			*faultDrop, *faultDup, *faultDelay, *faultSeed)
	}
	log.Printf("nasdd: drive %d serving %d x 4KB blocks on %s (%s)", *id, *blocks, l.Addr(), mode)

	// The QoS plane wraps the drive handler: rpc workers feed the
	// admission queue, executors feed the drive. Shed traffic leaves as
	// StatusRetryLater, never as transport errors.
	var handler rpc.Handler = drv
	if *qosOn {
		weights, err := parseWeights(*qosWeights)
		if err != nil {
			log.Fatalf("nasdd: bad -qos-weights: %v", err)
		}
		qc := qos.Config{
			Classify:    drive.QoSClassify,
			Concurrency: *qosConc,
			Queue:       *qosQueue,
			TenantQueue: *qosTenantQueue,
			Rate:        *qosRate,
			Burst:       *qosBurst,
			Weights:     weights,
			Shed:        *qosShed,
			Metrics:     reg,
			Events:      drv.Events(),
		}
		ctl := qos.New(drv, qc)
		defer ctl.Close()
		handler = ctl
		log.Printf("nasdd: qos armed: queue=%d tenant-queue=%d rate=%g burst=%g shed=%v weights=%q",
			*qosQueue, *qosTenantQueue, *qosRate, *qosBurst, *qosShed, *qosWeights)
	}
	srv := rpc.NewServer(handler,
		rpc.WithMetrics(reg),
		rpc.WithQueue(*rpcQueue),
		rpc.WithProcNames(func(p uint16) string { return drive.Op(p).String() }))

	if *metricsAddr != "" {
		mux := telemetry.NewMux(reg.Snapshot, drv.Trace(), drv.Spans(), drv.Events())
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		go func() {
			log.Printf("nasdd: observability on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("nasdd: metrics server: %v", err)
			}
		}()
	}

	// Flush write-behind data on SIGINT/SIGTERM before exiting.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		log.Printf("nasdd: flushing and shutting down")
		drv.Events().Emitf(telemetry.SevInfo, "drive", "stop", "drive %d shutting down", *id)
		if err := drv.Store().Flush(); err != nil {
			log.Printf("nasdd: flush: %v", err)
		}
		srv.Close()
		os.Exit(0)
	}()
	srv.Serve(lis)
}
