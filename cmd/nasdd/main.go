// Command nasdd runs a NASD drive daemon: an object store served over
// TCP with cryptographic capability enforcement.
//
// Usage:
//
//	nasdd -listen 127.0.0.1:7070 -id 1 -master <hex key> [-blocks 65536] [-insecure] [-metrics 127.0.0.1:7071]
//
// The master key (64 hex characters) is the root of the drive's key
// hierarchy; the file manager that manages this drive must hold the
// same key. Generate one with: nasdctl genkey
//
// With -path the store is backed by a file on disk and survives
// restarts (the drive formats the file on first use and reopens it
// thereafter); without it, the store lives in memory. Reopening runs
// mount-time journal recovery (DESIGN.md §7) — committed metadata
// survives a crash or power cut — and logs a one-line recovery
// summary when the volume did not open clean. See OPERATIONS.md for
// the operator runbook.
//
// With -metrics the daemon additionally serves plain-JSON
// observability over HTTP: GET /metrics (the full telemetry snapshot:
// per-op counters and latency histograms, cache hit rates, media
// counters; add ?partition=P for one tenant's slice), GET /healthz
// (liveness + uptime), GET /trace?n=N (the last N served requests),
// GET /trace?trace=ID (every span of one trace), and GET
// /events?n=N&min=SEV (the drive's structured event log: starts,
// recoveries, compactions). Adding -pprof exposes the standard
// net/http/pprof profiling handlers under /debug/pprof/ on the same
// server. The same data is available over the NASD interface itself
// via `nasdctl stats`, `nasdctl trace`, and `nasdctl events`; see
// `nasdctl top` for a whole-fleet view.
//
// -trace-slow sets the slow-op threshold: a request whose root span
// runs at least that long has its whole span tree retained past ring
// wraparound, so `nasdctl trace` can still reconstruct it later.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"nasd/internal/blockdev"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/object"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "TCP listen address")
	id := flag.Uint64("id", 1, "drive identity (baked into capabilities)")
	masterHex := flag.String("master", "", "master key, 64 hex chars (required unless -insecure)")
	blocks := flag.Int64("blocks", 65536, "device size in 4 KB blocks")
	path := flag.String("path", "", "backing file for durable storage (empty = in-memory)")
	insecure := flag.Bool("insecure", false, "disable capability enforcement (the paper's measurement mode)")
	backend := flag.String("backend", "classic", "default storage engine for new partitions: classic or needle")
	metricsAddr := flag.String("metrics", "", "HTTP observability address for /metrics, /healthz, /trace (empty = disabled)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof handlers on the -metrics server")
	traceSlow := flag.Duration("trace-slow", 0, "retain full span trees for requests at least this slow (0 = disabled)")
	faultDrop := flag.Float64("fault-drop", 0, "fault injection: drop each sent message with this probability (0 = off)")
	faultDup := flag.Float64("fault-dup", 0, "fault injection: duplicate each sent message with this probability (0 = off)")
	faultDelay := flag.Duration("fault-delay", 0, "fault injection: delay every sent message by this much (0 = off)")
	faultSeed := flag.Int64("fault-seed", 1, "fault injection: seed for the deterministic fault schedule")
	flag.Parse()

	var master crypt.Key
	if *masterHex == "" {
		if !*insecure {
			fmt.Fprintln(os.Stderr, "nasdd: -master required (or pass -insecure); generate with: nasdctl genkey")
			os.Exit(2)
		}
		master = crypt.NewRandomKey()
	} else {
		raw, err := hex.DecodeString(*masterHex)
		if err != nil {
			log.Fatalf("nasdd: bad -master: %v", err)
		}
		master, err = crypt.KeyFromBytes(raw)
		if err != nil {
			log.Fatalf("nasdd: bad -master: %v", err)
		}
	}

	var dev blockdev.Device
	fresh := true
	if *path == "" {
		dev = blockdev.NewMemDisk(4096, *blocks)
	} else if _, statErr := os.Stat(*path); statErr == nil {
		fd, err := blockdev.OpenFileDisk(*path)
		if err != nil {
			log.Fatalf("nasdd: %v", err)
		}
		dev = fd
		fresh = false
	} else {
		fd, err := blockdev.CreateFileDisk(*path, 4096, *blocks)
		if err != nil {
			log.Fatalf("nasdd: %v", err)
		}
		dev = fd
	}

	// One registry spans the media, the object system, and the RPC
	// plane, so a single snapshot carries the whole Table 1-style
	// breakdown.
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanLog(telemetry.DefaultSpanLogSize)
	if *traceSlow > 0 {
		spans.SetSlowThreshold(*traceSlow)
	}
	idev := blockdev.Instrument(dev, reg).WithSpanLog(spans)
	defBackend, err := object.ParseBackendKind(*backend)
	if err != nil {
		log.Fatalf("nasdd: %v", err)
	}
	cfg := drive.Config{ID: *id, Master: master, Secure: !*insecure, Metrics: reg, Media: idev, Spans: spans}
	cfg.Store.DefaultBackend = defBackend

	var drv *drive.Drive
	if fresh {
		drv, err = drive.NewFormat(idev, cfg)
	} else {
		drv, err = drive.Open(idev, cfg)
	}
	if err != nil {
		log.Fatalf("nasdd: attach: %v", err)
	}
	if ri := drv.Store().RecoveryInfo(); ri != (object.RecoveryInfo{}) {
		log.Printf("nasdd: recovery: replayed %d journal records, discarded %d torn tails, repaired %d refcounts in %v",
			ri.Replayed, ri.TornTails, ri.RefRepairs, ri.Duration)
	}
	l, err := rpc.ListenTCP(*listen)
	if err != nil {
		log.Fatalf("nasdd: listen: %v", err)
	}
	mode := "secure"
	if *insecure {
		mode = "INSECURE"
	}
	var lis rpc.Listener = l
	if *faultDrop > 0 || *faultDup > 0 || *faultDelay > 0 {
		// Chaos mode: every accepted connection's sends run under a
		// deterministic fault schedule, so client retry/reconnect
		// behavior can be exercised against a real TCP daemon.
		faults := rpc.NewFaults(*faultSeed)
		faults.DropRate(*faultDrop)
		faults.DuplicateRate(*faultDup)
		faults.Delay(*faultDelay)
		lis = faults.WrapListener(l)
		log.Printf("nasdd: FAULT INJECTION armed: drop=%.3f dup=%.3f delay=%v seed=%d",
			*faultDrop, *faultDup, *faultDelay, *faultSeed)
	}
	log.Printf("nasdd: drive %d serving %d x 4KB blocks on %s (%s)", *id, *blocks, l.Addr(), mode)
	srv := rpc.NewServer(drv,
		rpc.WithMetrics(reg),
		rpc.WithProcNames(func(p uint16) string { return drive.Op(p).String() }))

	if *metricsAddr != "" {
		mux := telemetry.NewMux(reg.Snapshot, drv.Trace(), drv.Spans(), drv.Events())
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		go func() {
			log.Printf("nasdd: observability on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("nasdd: metrics server: %v", err)
			}
		}()
	}

	// Flush write-behind data on SIGINT/SIGTERM before exiting.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		log.Printf("nasdd: flushing and shutting down")
		drv.Events().Emitf(telemetry.SevInfo, "drive", "stop", "drive %d shutting down", *id)
		if err := drv.Store().Flush(); err != nil {
			log.Printf("nasdd: flush: %v", err)
		}
		srv.Close()
		os.Exit(0)
	}()
	srv.Serve(lis)
}
