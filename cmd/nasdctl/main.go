// Command nasdctl is a CLI client for a NASD drive daemon. It plays
// both roles of the architecture from one process: the administrator /
// file manager role (it holds the master key and mints capabilities)
// and the client role (it uses those capabilities against the drive).
//
// Usage:
//
//	nasdctl genkey
//	nasdctl -addr HOST:PORT -id DRIVEID -master HEXKEY <command> [args]
//
// Commands:
//
//	mkpart PART [QUOTA_BLOCKS] [BACKEND]
//	                                create a partition; BACKEND is
//	                                classic or needle (default: the
//	                                drive's -backend setting)
//	rmpart PART                     remove an empty partition
//	partinfo PART                   show partition usage
//	create PART                     create an object, print its ID
//	remove PART OBJ                 remove an object
//	list PART                       list object IDs
//	write PART OBJ OFF              write stdin at offset
//	read PART OBJ OFF LEN           read to stdout
//	attr PART OBJ                   show object attributes
//	version PART OBJ                copy-on-write snapshot, print new ID
//	revoke PART OBJ                 bump version (revoke capabilities)
//	flush                           force write-behind data to media
//	stats [TRACE_N]                 show the drive's telemetry: the
//	                                per-op Table 1-style cost table,
//	                                every raw metric, and (with TRACE_N)
//	                                the last TRACE_N served requests
//	trace TRACEID                   pull the spans of one trace from
//	                                every drive named by -addr (comma-
//	                                separated), merge them with this
//	                                process's own client spans, and
//	                                print an indented timeline with
//	                                stragglers flagged
//	fleet [-json]                   one aggregated snapshot of every
//	                                -addr drive: per-drive and total
//	                                throughput, per-tenant (partition)
//	                                split, p99 exemplars; -json emits
//	                                the raw snapshot for scripts
//	top [-interval D] [-samples N]  live fleet view: the fleet table
//	                                refreshed every interval with op/s
//	                                and MB/s rates between polls, plus
//	                                recent warn+ events
//	events [N] [SEVERITY]           merge the structured event logs of
//	                                every -addr drive (breaker trips,
//	                                journal recovery, compactions, ...)
//	                                into one timeline; N per drive
//	                                (default 128), minimum SEVERITY
//	                                info|warn|error (default info)
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/object"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "drive address (trace accepts a comma-separated list)")
	driveID := flag.Uint64("id", 1, "drive identity")
	masterHex := flag.String("master", "", "master key (64 hex chars)")
	insecure := flag.Bool("insecure", false, "talk to an insecure drive")
	timeout := flag.Duration("timeout", 30*time.Second, "per-command deadline (0 = none)")
	retries := flag.Int("retries", 3, "retries per request after the first attempt (0 = fail fast); idempotent requests reconnect and reissue on transport errors")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "genkey" {
		k := crypt.NewRandomKey()
		fmt.Println(hex.EncodeToString(k[:]))
		return
	}

	var master crypt.Key
	if !*insecure {
		raw, err := hex.DecodeString(*masterHex)
		if err != nil {
			log.Fatalf("nasdctl: bad -master: %v", err)
		}
		master, err = crypt.KeyFromBytes(raw)
		if err != nil {
			log.Fatalf("nasdctl: bad -master: %v", err)
		}
	}
	addrs := strings.Split(*addr, ",")
	conn, err := rpc.DialTCP(addrs[0])
	if err != nil {
		log.Fatalf("nasdctl: dial: %v", err)
	}
	opts := []client.Option{client.WithSecurity(!*insecure)}
	if *retries > 0 {
		// Transient daemon hiccups (restart, dropped TCP connection)
		// are retried with backoff over a fresh dial instead of
		// failing the command. The per-attempt timeout divides the
		// command deadline across the attempts so a silently dropped
		// message is reissued while the deadline still has room,
		// rather than stalling the first attempt until it expires.
		p := client.RetryPolicy{MaxAttempts: *retries + 1}
		if *timeout > 0 {
			p.AttemptTimeout = *timeout / time.Duration(p.MaxAttempts)
		}
		opts = append(opts,
			client.WithRetry(p),
			client.WithDialer(func() (rpc.Conn, error) { return rpc.DialTCP(addrs[0]) }))
	}
	cli := client.New(conn, *driveID, uint64(os.Getpid())<<32|uint64(time.Now().UnixNano()&0xffffffff), opts...)
	defer cli.Close()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	c := ctl{ctx: ctx, cli: cli, addrs: addrs, driveID: *driveID, master: master, keys: crypt.NewHierarchy(master), secure: !*insecure}
	if err := c.run(args); err != nil {
		log.Fatalf("nasdctl: %v", err)
	}
}

type ctl struct {
	ctx     context.Context
	cli     *client.Drive
	addrs   []string // every -addr entry; cli is connected to addrs[0]
	driveID uint64
	master  crypt.Key
	keys    *crypt.Hierarchy
	secure  bool
}

func (c *ctl) masterID() crypt.KeyID { return crypt.KeyID{Type: crypt.MasterKey} }

// mint issues a capability for the command being run. Partition keys
// are derived deterministically from the master key, matching the
// drive's own hierarchy.
func (c *ctl) mint(part uint16, obj, ver uint64, rights capability.Rights) (capability.Capability, error) {
	if err := c.keys.AddPartition(part); err != nil {
		// Already added in this process: fine.
		_ = err
	}
	kid, key, err := c.keys.CurrentWorkingKey(part)
	if err != nil {
		return capability.Capability{}, err
	}
	return capability.Mint(capability.Public{
		DriveID: c.driveID, Partition: part, Object: obj, ObjVer: ver,
		Rights: rights, Expiry: time.Now().Add(10 * time.Minute).UnixNano(), Key: kid,
	}, key), nil
}

func (c *ctl) objCap(part uint16, obj uint64, rights capability.Rights) (*capability.Capability, error) {
	if !c.secure {
		return nil, nil
	}
	// Fetch the current version with a partition-scope capability.
	wc, err := c.mint(part, 0, 0, capability.GetAttr)
	if err != nil {
		return nil, err
	}
	attrs, err := c.cli.GetAttr(c.ctx, &wc, part, obj)
	if err != nil {
		return nil, err
	}
	cp, err := c.mint(part, obj, attrs.Version, rights)
	if err != nil {
		return nil, err
	}
	return &cp, nil
}

func parseU(s string) uint64 {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		log.Fatalf("nasdctl: bad number %q", s)
	}
	return v
}

func (c *ctl) run(args []string) error {
	cmd := args[0]
	rest := args[1:]
	need := func(n int) {
		if len(rest) < n {
			log.Fatalf("nasdctl: %s needs %d arguments", cmd, n)
		}
	}
	switch cmd {
	case "mkpart":
		need(1)
		var quota int64
		if len(rest) > 1 {
			quota = int64(parseU(rest[1]))
		}
		if len(rest) > 2 {
			kind, err := object.ParseBackendKind(rest[2])
			if err != nil {
				return err
			}
			return c.cli.CreatePartitionBackend(c.ctx, c.masterID(), c.master, uint16(parseU(rest[0])), quota, kind)
		}
		return c.cli.CreatePartition(c.ctx, c.masterID(), c.master, uint16(parseU(rest[0])), quota)
	case "rmpart":
		need(1)
		return c.cli.RemovePartition(c.ctx, c.masterID(), c.master, uint16(parseU(rest[0])))
	case "partinfo":
		need(1)
		p, err := c.cli.GetPartition(c.ctx, c.masterID(), c.master, uint16(parseU(rest[0])))
		if err != nil {
			return err
		}
		fmt.Printf("partition %d (%s): quota %d blocks, used %d blocks, %d objects\n",
			p.ID, p.Backend, p.QuotaBlocks, p.UsedBlocks, p.ObjectCount)
		return nil
	case "create":
		need(1)
		part := uint16(parseU(rest[0]))
		var cp *capability.Capability
		if c.secure {
			mc, err := c.mint(part, 0, 0, capability.CreateObj)
			if err != nil {
				return err
			}
			cp = &mc
		}
		id, err := c.cli.Create(c.ctx, cp, part)
		if err != nil {
			return err
		}
		fmt.Println(id)
		return nil
	case "remove":
		need(2)
		part := uint16(parseU(rest[0]))
		obj := parseU(rest[1])
		cp, err := c.objCap(part, obj, capability.Remove)
		if err != nil {
			return err
		}
		return c.cli.Remove(c.ctx, cp, part, obj)
	case "list":
		need(1)
		part := uint16(parseU(rest[0]))
		var cp *capability.Capability
		if c.secure {
			mc, err := c.mint(part, 0, 0, capability.Read)
			if err != nil {
				return err
			}
			cp = &mc
		}
		ids, err := c.cli.List(c.ctx, cp, part)
		if err != nil {
			return err
		}
		for _, id := range ids {
			fmt.Println(id)
		}
		return nil
	case "write":
		need(3)
		part := uint16(parseU(rest[0]))
		obj := parseU(rest[1])
		off := parseU(rest[2])
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		cp, err := c.objCap(part, obj, capability.Write)
		if err != nil {
			return err
		}
		return c.cli.WritePipelined(c.ctx, cp, part, obj, off, data)
	case "read":
		need(4)
		part := uint16(parseU(rest[0]))
		obj := parseU(rest[1])
		cp, err := c.objCap(part, obj, capability.Read)
		if err != nil {
			return err
		}
		data, err := c.cli.ReadPipelined(c.ctx, cp, part, obj, parseU(rest[2]), int(parseU(rest[3])))
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	case "attr":
		need(2)
		part := uint16(parseU(rest[0]))
		obj := parseU(rest[1])
		cp, err := c.objCap(part, obj, capability.GetAttr)
		if err != nil {
			return err
		}
		a, err := c.cli.GetAttr(c.ctx, cp, part, obj)
		if err != nil {
			return err
		}
		fmt.Printf("size %d  version %d  created %s  modified %s\n",
			a.Size, a.Version, a.CreateTime.Format(time.RFC3339), a.ModTime.Format(time.RFC3339))
		return nil
	case "version":
		need(2)
		part := uint16(parseU(rest[0]))
		obj := parseU(rest[1])
		cp, err := c.objCap(part, obj, capability.Version)
		if err != nil {
			return err
		}
		id, err := c.cli.VersionObject(c.ctx, cp, part, obj)
		if err != nil {
			return err
		}
		fmt.Println(id)
		return nil
	case "revoke":
		need(2)
		part := uint16(parseU(rest[0]))
		obj := parseU(rest[1])
		cp, err := c.objCap(part, obj, capability.SetAttr)
		if err != nil {
			return err
		}
		v, err := c.cli.BumpVersion(c.ctx, cp, part, obj)
		if err != nil {
			return err
		}
		fmt.Printf("new version %d\n", v)
		return nil
	case "flush":
		return c.cli.Flush(c.ctx)
	case "stats":
		traceN := 0
		if len(rest) > 0 {
			traceN = int(parseU(rest[0]))
		}
		sr, err := c.cli.ServerMetrics(c.ctx, traceN)
		if err != nil {
			return err
		}
		fmt.Printf("drive %d per-op cost breakdown (measured; cf. paper Table 1):\n\n", sr.DriveID)
		telemetry.WriteOpTable(os.Stdout, sr.Metrics, "drive.op")
		telemetry.WriteTenantTable(os.Stdout, sr.Metrics, "this drive, cumulative")
		telemetry.WriteExemplars(os.Stdout, sr.Metrics, "drive.op")
		fmt.Println()
		telemetry.WriteText(os.Stdout, sr.Metrics)
		if len(sr.Trace) > 0 {
			fmt.Printf("\nlast %d requests:\n", len(sr.Trace))
			for _, ev := range sr.Trace {
				fmt.Printf("  req=%d %-10s %-12s %10s %8dB\n",
					ev.RequestID, ev.Op, ev.Status, time.Duration(ev.DurNanos).Round(time.Microsecond), ev.Bytes)
			}
		}
		return nil
	case "trace":
		need(1)
		return c.trace(parseU(rest[0]))
	case "fleet":
		return c.fleet(rest)
	case "top":
		return c.top(rest)
	case "events":
		return c.events(rest)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// trace pulls every span recorded for one trace ID from each drive in
// c.addrs, merges them with the spans this process recorded itself
// (relevant when the traced operation ran in-process, e.g. through
// nasdbench), and prints the combined timeline.
func (c *ctl) trace(traceID uint64) error {
	sets := [][]telemetry.SpanRecord{telemetry.ProcessSpans.ByTrace(traceID)}
	for i, addr := range c.addrs {
		cli := c.cli
		if i > 0 {
			addr := addr
			conn, err := rpc.DialTCP(addr)
			if err != nil {
				return fmt.Errorf("dial %s: %v", addr, err)
			}
			cli = client.New(conn, c.driveID, uint64(os.Getpid())<<32|uint64(i),
				client.WithSecurity(c.secure),
				client.WithRetry(client.RetryPolicy{}),
				client.WithDialer(func() (rpc.Conn, error) { return rpc.DialTCP(addr) }))
			defer cli.Close()
		}
		spans, err := cli.ServerSpans(c.ctx, traceID)
		if err != nil {
			return fmt.Errorf("spans from %s: %v", addr, err)
		}
		sets = append(sets, spans)
	}
	telemetry.WriteTimeline(os.Stdout, traceID, telemetry.MergeSpans(sets...))
	return nil
}
