package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"nasd/internal/client"
	"nasd/internal/drive"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// Fleet commands: fleet (one-shot snapshot), top (live refresh), and
// events (merged event timeline). All of them poll every drive named
// by -addr over the stats RPC and hand the per-drive replies to
// internal/telemetry's fleet aggregation, which owns the merging and
// rendering.

// fleetClients returns one client per -addr entry. Index 0 reuses the
// command's existing connection; the rest are dialed here. The returned
// cleanup closes only the extra connections (main closes cli).
func (c *ctl) fleetClients() ([]*client.Drive, func(), error) {
	clis := []*client.Drive{c.cli}
	var extra []*client.Drive
	closeAll := func() {
		for _, cli := range extra {
			cli.Close()
		}
	}
	for i, addr := range c.addrs[1:] {
		addr := addr
		conn, err := rpc.DialTCP(addr)
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("dial %s: %v", addr, err)
		}
		cli := client.New(conn, c.driveID, uint64(os.Getpid())<<32|uint64(i+1),
			client.WithSecurity(c.secure),
			client.WithRetry(client.RetryPolicy{}),
			client.WithDialer(func() (rpc.Conn, error) { return rpc.DialTCP(addr) }))
		extra = append(extra, cli)
		clis = append(clis, cli)
	}
	return clis, closeAll, nil
}

// pollFleet takes one stats sample from every drive. A drive that
// fails to answer is reported in its row's Err rather than failing the
// whole poll — a fleet view that dies when one drive does would be
// useless exactly when it matters.
func (c *ctl) pollFleet(ctx context.Context, clis []*client.Drive, eventN int, eventMin telemetry.Severity) telemetry.FleetSnapshot {
	drives := make([]telemetry.FleetDrive, len(clis))
	for i, cli := range clis {
		fd := telemetry.FleetDrive{Addr: c.addrs[i]}
		sr, err := cli.ServerStats(ctx, drive.StatsArgs{EventN: uint32(eventN), EventMin: uint8(eventMin)})
		if err != nil {
			fd.Err = err.Error()
		} else {
			fd.DriveID = sr.DriveID
			fd.Metrics = sr.Metrics
			fd.Events = sr.Events
		}
		drives[i] = fd
	}
	return telemetry.BuildFleet(drives)
}

// fleet prints one aggregated snapshot of every -addr drive, as a
// table or (with -json) as the raw FleetSnapshot for scripts and CI.
func (c *ctl) fleet(rest []string) error {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the raw fleet snapshot as JSON")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	clis, closeAll, err := c.fleetClients()
	if err != nil {
		return err
	}
	defer closeAll()
	snap := c.pollFleet(c.ctx, clis, 64, telemetry.SevInfo)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	telemetry.WriteFleetTable(os.Stdout, snap, nil)
	return nil
}

// top renders the fleet table as a live display, recomputing op and
// MB/s rates between consecutive polls. It ignores the command-level
// -timeout (a watch command has no natural deadline); each individual
// poll is still bounded.
func (c *ctl) top(rest []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	interval := fs.Duration("interval", time.Second, "refresh interval")
	samples := fs.Int("samples", 0, "stop after this many refreshes (0 = until interrupted)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	clis, closeAll, err := c.fleetClients()
	if err != nil {
		return err
	}
	defer closeAll()

	pollTimeout := 5 * time.Second
	if *interval > pollTimeout {
		pollTimeout = *interval
	}
	var prev *telemetry.FleetSnapshot
	for n := 0; *samples <= 0 || n < *samples; n++ {
		ctx, cancel := context.WithTimeout(context.Background(), pollTimeout)
		snap := c.pollFleet(ctx, clis, 16, telemetry.SevWarn)
		cancel()

		// Render into a buffer and emit with one write after the ANSI
		// home+clear, so each refresh appears atomically.
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "nasd top — %d drive(s), every %s — %s\n\n",
			len(clis), interval, time.Now().Format("15:04:05"))
		telemetry.WriteFleetTable(&buf, snap, prev)
		var sets [][]telemetry.Event
		var sources []string
		for _, d := range snap.Drives {
			if len(d.Events) > 0 {
				sets = append(sets, d.Events)
				sources = append(sources, d.Addr)
			}
		}
		if merged := telemetry.MergeEvents(sets, sources); len(merged) > 0 {
			fmt.Fprintf(&buf, "\nrecent events (warn and above):\n")
			telemetry.WriteEvents(&buf, merged)
		}
		fmt.Print("\x1b[H\x1b[2J" + buf.String())

		prev = &snap
		if *samples <= 0 || n+1 < *samples {
			time.Sleep(*interval)
		}
	}
	return nil
}

// events prints the merged event timeline of every -addr drive:
// `nasdctl events [N] [SEVERITY]` fetches up to N events per drive
// (default 128) of at least SEVERITY (default info), stamps each with
// the drive it came from, and interleaves them by timestamp.
func (c *ctl) events(rest []string) error {
	n := 128
	minSev := telemetry.SevInfo
	if len(rest) > 0 {
		n = int(parseU(rest[0]))
	}
	if len(rest) > 1 {
		sev, err := telemetry.ParseSeverity(rest[1])
		if err != nil {
			return err
		}
		minSev = sev
	}
	clis, closeAll, err := c.fleetClients()
	if err != nil {
		return err
	}
	defer closeAll()
	sets := make([][]telemetry.Event, len(clis))
	for i, cli := range clis {
		sr, err := cli.ServerStats(c.ctx, drive.StatsArgs{EventN: uint32(n), EventMin: uint8(minSev)})
		if err != nil {
			return fmt.Errorf("events from %s: %v", c.addrs[i], err)
		}
		sets[i] = sr.Events
	}
	telemetry.WriteEvents(os.Stdout, telemetry.MergeEvents(sets, c.addrs))
	return nil
}
