// Command nasdfm runs a NASD file manager daemon: it manages a set of
// nasdd drives (namespace, access control, capability issuance) and
// serves the file-manager protocol over TCP.
//
// Usage:
//
//	nasdfm -listen 127.0.0.1:7000 \
//	       -drive 1=127.0.0.1:7070=<hexkey> \
//	       -drive 2=127.0.0.1:7071=<hexkey> \
//	       [-mount]
//
// Each -drive flag is ID=ADDR=MASTERKEY. By default the filesystem is
// formatted (partitions created, root directory written); pass -mount
// to attach to drives already carrying the filesystem.
//
// The file-manager channel carries capability private portions, so
// deployments must protect it (run it on a trusted segment or tunnel) —
// it is the "secure and private protocol external to NASD" of the
// paper.
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/filemgr"
	"nasd/internal/fmrpc"
	"nasd/internal/rpc"
)

type driveFlag struct {
	id     uint64
	addr   string
	master crypt.Key
}

type driveFlags []driveFlag

func (d *driveFlags) String() string { return fmt.Sprintf("%d drives", len(*d)) }

func (d *driveFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 3)
	if len(parts) != 3 {
		return fmt.Errorf("want ID=ADDR=MASTERKEY, got %q", v)
	}
	id, err := strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		return fmt.Errorf("bad drive ID %q: %v", parts[0], err)
	}
	raw, err := hex.DecodeString(parts[2])
	if err != nil {
		return fmt.Errorf("bad master key: %v", err)
	}
	key, err := crypt.KeyFromBytes(raw)
	if err != nil {
		return err
	}
	*d = append(*d, driveFlag{id: id, addr: parts[1], master: key})
	return nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7000", "TCP listen address for the file-manager protocol")
	mount := flag.Bool("mount", false, "attach to an existing filesystem instead of formatting")
	var drives driveFlags
	flag.Var(&drives, "drive", "drive spec ID=ADDR=MASTERKEY (repeatable)")
	flag.Parse()

	if len(drives) == 0 {
		fmt.Fprintln(os.Stderr, "nasdfm: at least one -drive required")
		os.Exit(2)
	}
	var targets []filemgr.DriveTarget
	for i, d := range drives {
		d := d
		conn, err := rpc.DialTCP(d.addr)
		if err != nil {
			log.Fatalf("nasdfm: dialing drive %d at %s: %v", d.id, d.addr, err)
		}
		// The file manager is long-lived: a drive restart must not
		// wedge it, so idempotent requests retry with backoff over a
		// fresh dial when the connection dies.
		cli := client.New(conn, d.id, uint64(os.Getpid())<<16|uint64(i),
			client.WithRetry(client.RetryPolicy{}),
			client.WithDialer(func() (rpc.Conn, error) { return rpc.DialTCP(d.addr) }))
		targets = append(targets, filemgr.DriveTarget{Client: cli, DriveID: d.id, Master: d.master})
	}

	ctx := context.Background()
	var fm *filemgr.FM
	var err error
	if *mount {
		fm, err = filemgr.Mount(ctx, filemgr.Config{Drives: targets})
	} else {
		fm, err = filemgr.Format(ctx, filemgr.Config{Drives: targets})
	}
	if err != nil {
		log.Fatalf("nasdfm: %v", err)
	}

	l, err := rpc.ListenTCP(*listen)
	if err != nil {
		log.Fatalf("nasdfm: listen: %v", err)
	}
	log.Printf("nasdfm: managing %d drives, serving on %s", len(drives), l.Addr())
	srv := rpc.NewServer(fmrpc.NewServer(fm))
	srv.Serve(l)
}
