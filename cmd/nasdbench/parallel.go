package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// runParallel stands up one secure in-process drive and hammers it with
// N concurrent client workers, each on its own connection and its own
// object — the drive-side concurrency the fine-grained locking scheme
// exists for. It reports per-phase aggregate throughput and the
// per-layer lock contention counters, so the effect of adding workers
// is visible both as bandwidth and as lock-wait telemetry.
func runParallel(w io.Writer, workers, sizeMB int, jsonOut string) error {
	if workers < 1 {
		return fmt.Errorf("-parallel needs at least 1 worker")
	}
	master := crypt.NewRandomKey()
	reg := telemetry.NewRegistry()
	blocks := int64(workers*sizeMB)*1024 + 8192 // 4 KiB blocks, headroom for metadata
	media := blockdev.Instrument(blockdev.NewMemDisk(4096, blocks), reg)
	drv, err := drive.NewFormat(media, drive.Config{
		ID: 1, Master: master, Secure: true, Metrics: reg, Media: media,
	})
	if err != nil {
		return err
	}
	l := rpc.NewInProcListener("nasdbench-parallel")
	srv := drv.Serve(l, rpc.WithWorkers(workers))
	defer srv.Close()

	ctx, _ := telemetry.WithRequestID(context.Background())
	const part = 1
	setup, err := l.Dial()
	if err != nil {
		return err
	}
	adminCli := client.New(setup, 1, 1)
	defer adminCli.Close()
	if err := adminCli.CreatePartition(ctx, crypt.KeyID{Type: crypt.MasterKey}, master, part, 0); err != nil {
		return err
	}
	keys := crypt.NewHierarchy(master)
	if err := keys.AddPartition(part); err != nil {
		return err
	}
	mint := func(obj, ver uint64, rights capability.Rights) (capability.Capability, error) {
		kid, key, err := keys.CurrentWorkingKey(part)
		if err != nil {
			return capability.Capability{}, err
		}
		return capability.Mint(capability.Public{
			DriveID: 1, Partition: part, Object: obj, ObjVer: ver,
			Rights: rights, Expiry: time.Now().Add(time.Hour).UnixNano(), Key: kid,
		}, key), nil
	}

	// Each worker gets its own connection, object, and data pattern.
	clis := make([]*client.Drive, workers)
	objs := make([]uint64, workers)
	for i := 0; i < workers; i++ {
		conn, err := l.Dial()
		if err != nil {
			return err
		}
		clis[i] = client.New(conn, 1, uint64(100+i))
		defer clis[i].Close()
		cc, err := mint(0, 0, capability.CreateObj)
		if err != nil {
			return err
		}
		objs[i], err = clis[i].Create(ctx, &cc, part)
		if err != nil {
			return err
		}
	}

	run := func(phase string, op func(i int) error) (time.Duration, error) {
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		start := time.Now()
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if err := op(i); err != nil {
					errs <- fmt.Errorf("%s worker %d: %w", phase, i, err)
				}
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return 0, err
		}
		return time.Since(start), nil
	}

	perWorker := sizeMB << 20
	writeDur, err := run("write", func(i int) error {
		data := make([]byte, perWorker)
		for j := range data {
			data[j] = byte(j*31 + i)
		}
		wc, err := mint(objs[i], 1, capability.Write)
		if err != nil {
			return err
		}
		wctx, _ := telemetry.WithRequestID(context.Background())
		return clis[i].WritePipelined(wctx, &wc, part, objs[i], 0, data)
	})
	if err != nil {
		return err
	}
	if err := adminCli.Flush(ctx); err != nil {
		return err
	}
	readDur, err := run("read", func(i int) error {
		rc, err := mint(objs[i], 1, capability.Read)
		if err != nil {
			return err
		}
		rctx, _ := telemetry.WithRequestID(context.Background())
		got, err := clis[i].ReadPipelined(rctx, &rc, part, objs[i], 0, perWorker)
		if err != nil {
			return err
		}
		want := make([]byte, perWorker)
		for j := range want {
			want[j] = byte(j*31 + i)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("read-back mismatch")
		}
		return nil
	})
	if err != nil {
		return err
	}

	total := float64(workers * sizeMB)
	fmt.Fprintf(w, "nasdbench -parallel: %d workers x %d MB, distinct objects, one drive\n", workers, sizeMB)
	fmt.Fprintf(w, "  write: %8.1f MB/s aggregate (%v)\n", total/writeDur.Seconds(), writeDur.Round(time.Millisecond))
	fmt.Fprintf(w, "  read:  %8.1f MB/s aggregate (%v)\n", total/readDur.Seconds(), readDur.Round(time.Millisecond))
	fmt.Fprintln(w)
	writeLockTable(w, reg.Snapshot())
	if jsonOut != "" {
		return writeBenchJSON(jsonOut, benchResult{
			Name:   "parallel",
			Config: benchConfig{SizeMB: sizeMB, Workers: workers, Secure: true},
			Throughput: map[string]float64{
				"write": total / writeDur.Seconds(),
				"read":  total / readDur.Seconds(),
			},
			Latency: latencyFromSnapshot(reg.Snapshot()),
		})
	}
	return nil
}

// writeLockTable prints the per-layer lock contention counters the
// store's lock meters publish (see DESIGN.md §4).
func writeLockTable(w io.Writer, snap telemetry.Snapshot) {
	var prefixes []string
	for name := range snap.Counters {
		if strings.HasSuffix(name, ".acquire") && strings.Contains(name, "lock") {
			prefixes = append(prefixes, strings.TrimSuffix(name, ".acquire"))
		}
	}
	sort.Strings(prefixes)
	if len(prefixes) == 0 {
		return
	}
	fmt.Fprintf(w, "lock contention by layer:\n")
	fmt.Fprintf(w, "  %-18s %12s %12s %12s %12s\n", "layer", "acquire", "contended", "wait-p50", "wait-p95")
	for _, p := range prefixes {
		h := snap.Histograms[p+".wait_ns"]
		fmt.Fprintf(w, "  %-18s %12d %12d %12s %12s\n", p,
			snap.Counters[p+".acquire"], snap.Counters[p+".contended"],
			time.Duration(h.Quantile(0.50)), time.Duration(h.Quantile(0.95)))
	}
}
