package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// runStats stands up one secure in-process drive over a throttled,
// instrumented device, runs a write-then-read workload against it, and
// prints the drive's measured per-op cost breakdown — the same table
// shape as the paper's Table 1, but measured from this implementation
// rather than modelled. The reads are issued serially so the media
// busy-time delta attributes exactly to each request.
func runStats(w io.Writer, sizeMB int, jsonOut string) error {
	master := crypt.NewRandomKey()
	reg := telemetry.NewRegistry()
	// ~200 MB/s media with a 5 us per-op overhead: fast enough to
	// finish promptly, slow enough that media time dominates large
	// transfers the way Table 1 shows.
	// Device sized at 4x the workload so allocation never thrashes.
	media := blockdev.Instrument(blockdev.NewThrottle(blockdev.NewMemDisk(4096, int64(sizeMB)*1024+4096), 200<<20, 5*time.Microsecond), reg)
	drv, err := drive.NewFormat(media, drive.Config{
		ID: 1, Master: master, Secure: true, Metrics: reg, Media: media,
	})
	if err != nil {
		return err
	}
	l := rpc.NewInProcListener("nasdbench-stats")
	srv := drv.Serve(l)
	defer srv.Close()
	conn, err := l.Dial()
	if err != nil {
		return err
	}
	cli := client.New(conn, 1, 42, client.WithMetrics(reg))
	defer cli.Close()

	ctx, _ := telemetry.WithRequestID(context.Background())
	const part = 1
	if err := cli.CreatePartition(ctx, crypt.KeyID{Type: crypt.MasterKey}, master, part, 0); err != nil {
		return err
	}
	keys := crypt.NewHierarchy(master)
	if err := keys.AddPartition(part); err != nil {
		return err
	}
	mint := func(obj, ver uint64, rights capability.Rights) (capability.Capability, error) {
		kid, key, err := keys.CurrentWorkingKey(part)
		if err != nil {
			return capability.Capability{}, err
		}
		return capability.Mint(capability.Public{
			DriveID: 1, Partition: part, Object: obj, ObjVer: ver,
			Rights: rights, Expiry: time.Now().Add(time.Hour).UnixNano(), Key: kid,
		}, key), nil
	}

	cc, err := mint(0, 0, capability.CreateObj)
	if err != nil {
		return err
	}
	obj, err := cli.Create(ctx, &cc, part)
	if err != nil {
		return err
	}

	// Write sizeMB of data (pipelined, the client's bulk-transfer path),
	// flush it to media, then read it back in serial 64 KB requests.
	data := make([]byte, sizeMB<<20)
	for i := range data {
		data[i] = byte(i * 31)
	}
	wc, err := mint(obj, 1, capability.Write)
	if err != nil {
		return err
	}
	wctx, _ := telemetry.WithRequestID(context.Background())
	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	writeStart := time.Now()
	if err := cli.WritePipelined(wctx, &wc, part, obj, 0, data); err != nil {
		return err
	}
	writeDur := time.Since(writeStart)
	runtime.ReadMemStats(&msAfter)
	writeFrags := float64((len(data) + client.DefaultFragmentSize - 1) / client.DefaultFragmentSize)
	writeAllocs := float64(msAfter.Mallocs-msBefore.Mallocs) / writeFrags
	writeBytes := float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / writeFrags
	if err := cli.Flush(ctx); err != nil {
		return err
	}
	rc, err := mint(obj, 1, capability.Read)
	if err != nil {
		return err
	}
	const frag = 64 << 10
	got := make([]byte, len(data))
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	readStart := time.Now()
	for off := 0; off < len(data); off += frag {
		rctx, _ := telemetry.WithRequestID(context.Background())
		if _, err := cli.ReadInto(rctx, &rc, part, obj, uint64(off), got[off:off+frag]); err != nil {
			return err
		}
	}
	readDur := time.Since(readStart)
	runtime.ReadMemStats(&msAfter)
	readOps := float64(len(data) / frag)
	readAllocs := float64(msAfter.Mallocs-msBefore.Mallocs) / readOps
	readBytes := float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / readOps
	if !bytes.Equal(got, data) {
		return fmt.Errorf("stats workload: read-back mismatch")
	}

	sr, err := cli.ServerMetrics(ctx, 8)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "nasdbench -stats: %d MB written (pipelined) + %d MB read (serial %d KB requests)\n",
		sizeMB, sizeMB, frag>>10)
	fmt.Fprintf(w, "allocation cost: %.0f allocs/%.0f B per read, %.0f allocs/%.0f B per write fragment\n",
		readAllocs, readBytes, writeAllocs, writeBytes)
	fmt.Fprintf(w, "drive %d per-op cost breakdown (measured; cf. paper Table 1):\n\n", sr.DriveID)
	telemetry.WriteOpTable(w, sr.Metrics, "drive.op")
	fmt.Fprintln(w)
	telemetry.WriteText(w, sr.Metrics)
	if len(sr.Trace) > 0 {
		fmt.Fprintf(w, "\nlast %d requests:\n", len(sr.Trace))
		for _, ev := range sr.Trace {
			fmt.Fprintf(w, "  req=%d %-10s %-12s %10s %8dB\n",
				ev.RequestID, ev.Op, ev.Status, time.Duration(ev.DurNanos).Round(time.Microsecond), ev.Bytes)
		}
	}
	if jsonOut != "" {
		return writeBenchJSON(jsonOut, benchResult{
			Name:   "stats",
			Config: benchConfig{SizeMB: sizeMB, Workers: 1, Secure: true},
			Throughput: map[string]float64{
				"write": float64(sizeMB) / writeDur.Seconds(),
				"read":  float64(sizeMB) / readDur.Seconds(),
			},
			Latency: latencyFromSnapshot(sr.Metrics),
			AllocsPerOp: map[string]float64{
				"write_frag": writeAllocs,
				"read":       readAllocs,
			},
			BytesPerOp: map[string]float64{
				"write_frag": writeBytes,
				"read":       readBytes,
			},
		})
	}
	return nil
}
