package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nasd/internal/capability"
	"nasd/internal/telemetry"
)

// This file implements -json: a machine-readable BENCH_<name>.json
// result per bench run, so successive runs (and CI artifacts) form a
// comparable performance trajectory. The schema is documented in
// EXPERIMENTS.md ("Machine-readable bench results").

// benchResult is the serialized outcome of one bench run.
type benchResult struct {
	Name       string                    `json:"name"`
	UnixNS     int64                     `json:"unix_ns"`
	Config     benchConfig               `json:"config"`
	Throughput map[string]float64        `json:"throughput_mbps"`
	Latency    map[string]latencySummary `json:"latency_ns"`
	// AllocsPerOp / BytesPerOp record heap-allocation cost per logical
	// operation (runtime.MemStats deltas across a measured phase divided
	// by its operation count, covering both halves of an in-process
	// client+drive pair). They track the zero-copy data path: a
	// regression here shows up before it costs bandwidth.
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  map[string]float64 `json:"bytes_per_op,omitempty"`
	// Counters carries resilience counters for runs (like -chaos) whose
	// point is fault handling rather than bandwidth. Omitted otherwise.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Tenants splits the drive-side op totals by the capability's
	// partition identity ("part.<P>"), merged across every drive in the
	// run — the attribution a shared array needs to bill tenants.
	Tenants map[string]tenantSummary `json:"tenants,omitempty"`
	// Events counts the run's structured events keyed
	// "subsystem.name" (e.g. "cheops.breaker_open"), so a result file
	// records not just how the run performed but what happened to it.
	Events map[string]int `json:"events,omitempty"`
}

// tenantSummary is one tenant's slice of the fleet's op traffic.
type tenantSummary struct {
	Calls    uint64 `json:"calls"`
	Errors   uint64 `json:"errors"`
	BytesIn  uint64 `json:"bytes_in"`
	BytesOut uint64 `json:"bytes_out"`
	P99NS    int64  `json:"p99_ns"`
}

// tenantsFromSnapshot extracts the per-tenant split from a (possibly
// merged) drive snapshot.
func tenantsFromSnapshot(snap telemetry.Snapshot) map[string]tenantSummary {
	out := make(map[string]tenantSummary)
	for _, p := range telemetry.TenantParts(snap) {
		ts := telemetry.TenantSnapshot(snap, p)
		calls, errs, bIn, bOut := telemetry.OpTotals(ts, "drive.op")
		svc := telemetry.MergedSvc(ts, "drive.op")
		out[capability.TenantKey(p)] = tenantSummary{
			Calls: calls, Errors: errs, BytesIn: bIn, BytesOut: bOut,
			P99NS: svc.Quantile(0.99),
		}
	}
	return out
}

// eventSummary buckets an event tail by "subsystem.name".
func eventSummary(events []telemetry.Event) map[string]int {
	if len(events) == 0 {
		return nil
	}
	out := make(map[string]int)
	for _, e := range events {
		out[e.Subsystem+"."+e.Name]++
	}
	return out
}

// benchConfig records the knobs that shaped the run.
type benchConfig struct {
	SizeMB  int  `json:"size_mb"`
	Workers int  `json:"workers"`
	Secure  bool `json:"secure"`
}

// latencySummary condenses one telemetry histogram (nanoseconds).
type latencySummary struct {
	Count uint64 `json:"count"`
	Mean  int64  `json:"mean"`
	P50   int64  `json:"p50"`
	P95   int64  `json:"p95"`
	P99   int64  `json:"p99"`
	Max   int64  `json:"max"`
}

// latencyFromSnapshot summarizes every latency histogram in snap worth
// tracking across runs: the per-op drive service times and the client's
// RPC round-trip time. Empty series are dropped.
func latencyFromSnapshot(snap telemetry.Snapshot) map[string]latencySummary {
	out := make(map[string]latencySummary)
	for name, h := range snap.Histograms {
		if h.Count == 0 {
			continue
		}
		if !strings.HasSuffix(name, ".svc_ns") && name != "rpc.client.call_ns" {
			continue
		}
		out[name] = latencySummary{
			Count: h.Count,
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
			Max:   h.Max,
		}
	}
	return out
}

// writeBenchJSON writes res to path. A path ending in .json names the
// exact output file; anything else is treated as a directory receiving
// BENCH_<name>.json.
func writeBenchJSON(path string, res benchResult) error {
	res.UnixNS = time.Now().UnixNano()
	if !strings.HasSuffix(path, ".json") {
		path = filepath.Join(path, "BENCH_"+res.Name+".json")
	}
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing bench json: %w", err)
	}
	fmt.Fprintf(os.Stderr, "nasdbench: wrote %s\n", path)
	return nil
}
