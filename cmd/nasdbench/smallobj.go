package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/object"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// The smallobj workload is the Haystack scenario scaled to bench time:
// a population of 4 KiB objects written once and then fetched with a
// Zipf-distributed stat+read mix (the photo-store access pattern: every
// logical GET is an attribute check plus a payload read). It runs the
// identical workload twice — once on a classic-layout partition, once
// on a needle partition — against otherwise identical drives, and
// reports write/read throughput and media I/Os per logical read side by
// side. The classic path pays multiple onode I/Os per operation; the
// needle path serves attributes from memory and payloads from one or
// two log-block reads, which is the entire argument for the engine.

const smallObjSize = 4 << 10

// runSmallObj benchmarks both backends and emits the combined result.
func runSmallObj(w io.Writer, objects int, jsonOut string) error {
	if objects < 16 {
		return fmt.Errorf("-smallobj-objects needs at least 16")
	}
	fmt.Fprintf(w, "nasdbench -workload smallobj: %d x %d KiB objects, Zipf stat+read mix, per-backend drives\n\n",
		objects, smallObjSize>>10)
	classic, err := smallObjRun(object.BackendClassic, objects)
	if err != nil {
		return fmt.Errorf("classic run: %w", err)
	}
	needle, err := smallObjRun(object.BackendNeedle, objects)
	if err != nil {
		return fmt.Errorf("needle run: %w", err)
	}

	fmt.Fprintf(w, "%-8s %14s %14s %18s\n", "backend", "write MB/s", "read MB/s", "media I/Os / read")
	for _, row := range []struct {
		name string
		r    smallObjResult
	}{{"classic", classic}, {"needle", needle}} {
		fmt.Fprintf(w, "%-8s %14.1f %14.1f %18.2f\n",
			row.name, row.r.writeMBps, row.r.readMBps, row.r.mediaPerRead)
	}
	fmt.Fprintf(w, "\nneedle/classic write speedup: %.1fx\n", needle.writeMBps/classic.writeMBps)

	if jsonOut != "" {
		return writeBenchJSON(jsonOut, benchResult{
			Name:   "smallobj",
			Config: benchConfig{SizeMB: objects * smallObjSize >> 20, Workers: 1, Secure: false},
			Throughput: map[string]float64{
				"classic_write": classic.writeMBps,
				"classic_read":  classic.readMBps,
				"needle_write":  needle.writeMBps,
				"needle_read":   needle.readMBps,
			},
			Counters: map[string]uint64{
				"objects":                      uint64(objects),
				"classic_media_per_read_milli": uint64(classic.mediaPerRead * 1000),
				"needle_media_per_read_milli":  uint64(needle.mediaPerRead * 1000),
				"write_speedup_milli":          uint64(needle.writeMBps / classic.writeMBps * 1000),
			},
		})
	}
	return nil
}

type smallObjResult struct {
	writeMBps    float64
	readMBps     float64
	mediaPerRead float64
}

// smallObjRun stands up one insecure in-process drive whose partition 1
// uses the given backend, writes the object population, then serves the
// Zipf stat+read mix, measuring media I/Os from the instrumented
// device.
func smallObjRun(backend object.BackendKind, objects int) (smallObjResult, error) {
	var res smallObjResult
	master := crypt.NewRandomKey()
	reg := telemetry.NewRegistry()
	// Sized for the population in either layout (classic: data block +
	// onode per object; needle: ~1.1 packed log blocks per object), with
	// a deliberately small cache so the data set does not fit — the
	// regime the backends are meant to be compared in. ~200 MB/s media
	// with a 10 us per-op cost makes per-op media I/O counts dominate,
	// the way seeks dominate a spinning photo store.
	blocks := int64(objects)*2 + 16384
	media := blockdev.Instrument(blockdev.NewThrottle(blockdev.NewMemDisk(4096, blocks), 200<<20, 10*time.Microsecond), reg)
	cfg := drive.Config{ID: 1, Master: master, Secure: false, Metrics: reg, Media: media}
	cfg.Store.CacheBlocks = 256
	cfg.Store.OnodeCount = int64(objects) + 1024
	drv, err := drive.NewFormat(media, cfg)
	if err != nil {
		return res, err
	}
	l := rpc.NewInProcListener("nasdbench-smallobj-" + backend.String())
	srv := drv.Serve(l)
	defer srv.Close()
	conn, err := l.Dial()
	if err != nil {
		return res, err
	}
	cli := client.New(conn, 1, 7)
	defer cli.Close()

	ctx, _ := telemetry.WithRequestID(context.Background())
	const part = 1
	err = cli.CreatePartitionBackend(ctx, crypt.KeyID{Type: crypt.MasterKey}, master, part, 0, backend)
	if err != nil {
		return res, err
	}
	// The drive is insecure (the paper's measurement mode), so a zero
	// capability satisfies the wire format without minting.
	nocap := &capability.Capability{}

	payload := func(i int) []byte {
		b := make([]byte, smallObjSize)
		for j := range b {
			b[j] = byte(i*131 + j*31)
		}
		return b
	}

	// Phase 1: populate — create + write every object, then flush. This
	// is the small-object ingest path the needle log exists for.
	ids := make([]uint64, objects)
	writeStart := time.Now()
	for i := 0; i < objects; i++ {
		id, err := cli.Create(ctx, nocap, part)
		if err != nil {
			return res, err
		}
		if err := cli.Write(ctx, nocap, part, id, 0, payload(i)); err != nil {
			return res, err
		}
		ids[i] = id
	}
	if err := cli.Flush(ctx); err != nil {
		return res, err
	}
	writeDur := time.Since(writeStart)

	// Phase 2: Zipf stat+read mix. Media I/Os per logical read come
	// from the instrumented device's read counter across the phase.
	reads := reg.Counter("blockdev.reads")
	nReads := objects
	zipf := rand.NewZipf(rand.New(rand.NewPCG(42, 7)), 1.1, 1, uint64(objects-1))
	readsBefore := reads.Load()
	readStart := time.Now()
	for i := 0; i < nReads; i++ {
		idx := int(zipf.Uint64())
		if _, err := cli.GetAttr(ctx, nocap, part, ids[idx]); err != nil {
			return res, err
		}
		got, err := cli.Read(ctx, nocap, part, ids[idx], 0, smallObjSize)
		if err != nil {
			return res, err
		}
		if i%1024 == 0 && !bytes.Equal(got, payload(idx)) {
			return res, fmt.Errorf("object %d: read-back mismatch", ids[idx])
		}
	}
	readDur := time.Since(readStart)
	readIOs := reads.Load() - readsBefore

	mb := float64(objects*smallObjSize) / (1 << 20)
	res.writeMBps = mb / writeDur.Seconds()
	res.readMBps = float64(nReads*smallObjSize) / (1 << 20) / readDur.Seconds()
	res.mediaPerRead = float64(readIOs) / float64(nReads)
	return res, nil
}
