// Command nasdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	nasdbench [-quick] [-experiment fig4,fig6,fig7,table1,fig9,andrew,active|all]
//	nasdbench -workload stats|parallel|chaos|smallobj|qos [flags]
//
// Each experiment prints the paper's values beside the values produced
// by this repository's models and simulations.
//
// With -workload, nasdbench instead runs a live workload against
// in-process drives (the older -stats, -parallel N, and -chaos flags
// remain as aliases):
//
//   - stats: a write+read workload against one secure drive, printing
//     the measured per-op telemetry — service time per NASD operation
//     split into digest verification, object system, and media;
//     Table 1's decomposition, measured rather than modelled.
//   - parallel: N concurrent client workers over distinct objects on
//     one drive, printing aggregate throughput plus the per-layer
//     lock-contention telemetry (DESIGN.md §4).
//   - chaos: the kill/restart soak from DESIGN.md §6-§7 over four
//     drives with verified RAID-5/mirrored traffic — the victim drive
//     is killed mid-run (volatile cache dropped), restarted through
//     journal recovery, marked stale, and rebuilt.
//   - smallobj: the classic-vs-needle storage-engine comparison — a
//     4 KiB object population written once then served with a Zipf
//     stat+read mix, on one partition per backend (DESIGN.md §4).
//   - qos: the multi-tenant overload scenario (DESIGN.md §10) — a
//     well-behaved victim tenant measured solo, then again under a
//     ~10x open-loop aggressor flood through the qos plane; the run
//     exits nonzero unless the victim's p99 holds within 3x of its
//     solo baseline with zero failures and all rejections typed as
//     retry-later.
//
// With -json PATH, every live workload additionally writes a
// machine-readable BENCH_<name>.json result (throughput, latency
// percentiles, config; schema in EXPERIMENTS.md) so runs can be
// compared over time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nasd/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run shorter simulations with fewer points")
	which := flag.String("experiment", "all", "comma-separated experiment IDs, or 'all'")
	workload := flag.String("workload", "", "live workload selector: stats, parallel, chaos, smallobj, or qos (empty = run experiments)")
	stats := flag.Bool("stats", false, "alias for -workload stats")
	statsMB := flag.Int("stats-mb", 8, "workload size in MB for the stats workload and per worker for parallel")
	parallel := flag.Int("parallel", 0, "worker count for the parallel workload; a nonzero value is also an alias for -workload parallel")
	chaos := flag.Bool("chaos", false, "alias for -workload chaos")
	chaosDur := flag.Duration("chaos-duration", 3*time.Second, "total soak length for the chaos workload (split across healthy/degraded/recovered phases)")
	chaosSeed := flag.Int64("seed", 1, "deterministic seed for the chaos fault schedule and workload")
	smallObjects := flag.Int("smallobj-objects", 20000, "object population for the smallobj workload (scaled stand-in for the Haystack million-object store)")
	qosDur := flag.Duration("qos-duration", 2*time.Second, "per-phase length for the qos workload (solo baseline, then contended)")
	qosClients := flag.Int("qos-clients", 1000, "simulated open-loop aggressor clients for the qos workload")
	jsonOut := flag.String("json", "", "also write a machine-readable BENCH_<name>.json result: a .json path names the file, anything else the directory (live workloads only)")
	flag.Parse()

	// The boolean/count flags predate -workload and remain as aliases.
	wl := *workload
	switch {
	case wl != "":
	case *chaos:
		wl = "chaos"
	case *parallel > 0:
		wl = "parallel"
	case *stats:
		wl = "stats"
	}

	if wl != "" {
		var err error
		switch wl {
		case "stats":
			err = runStats(os.Stdout, *statsMB, *jsonOut)
		case "parallel":
			workers := *parallel
			if workers <= 0 {
				workers = 4
			}
			err = runParallel(os.Stdout, workers, *statsMB, *jsonOut)
		case "chaos":
			err = runChaos(os.Stdout, *chaosDur, *chaosSeed, *jsonOut)
		case "smallobj":
			err = runSmallObj(os.Stdout, *smallObjects, *jsonOut)
		case "qos":
			err = runQoS(os.Stdout, *qosDur, *qosClients, *chaosSeed, *jsonOut)
		default:
			err = fmt.Errorf("unknown -workload %q (want stats, parallel, chaos, smallobj, or qos)", wl)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "nasdbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	ids := experiments.IDs()
	if *which != "all" {
		ids = strings.Split(*which, ",")
	}
	for _, id := range ids {
		res, err := experiments.Run(strings.TrimSpace(id), *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nasdbench: %v\n", err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
		fmt.Println()
	}
}
