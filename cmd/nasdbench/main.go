// Command nasdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	nasdbench [-quick] [-experiment fig4,fig6,fig7,table1,fig9,andrew,active|all]
//
// Each experiment prints the paper's values beside the values produced
// by this repository's models and simulations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nasd/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run shorter simulations with fewer points")
	which := flag.String("experiment", "all", "comma-separated experiment IDs, or 'all'")
	flag.Parse()

	ids := experiments.IDs()
	if *which != "all" {
		ids = strings.Split(*which, ",")
	}
	for _, id := range ids {
		res, err := experiments.Run(strings.TrimSpace(id), *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nasdbench: %v\n", err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
		fmt.Println()
	}
}
