// Command nasdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	nasdbench [-quick] [-experiment fig4,fig6,fig7,table1,fig9,andrew,active|all]
//	nasdbench -stats [-stats-mb 8]
//	nasdbench -parallel 4 [-stats-mb 8]
//
// Each experiment prints the paper's values beside the values produced
// by this repository's models and simulations.
//
// With -stats, nasdbench instead runs a live write+read workload
// against an in-process secure drive and prints the drive's measured
// per-op telemetry: service time per NASD operation split into digest
// verification, object system, and media — Table 1's decomposition,
// measured rather than modelled.
//
// With -parallel N, nasdbench drives one drive with N concurrent client
// workers over distinct objects and prints aggregate throughput plus
// the per-layer lock-contention telemetry (DESIGN.md §4).
//
// With -json PATH, -stats and -parallel additionally write a
// machine-readable BENCH_<name>.json result (throughput, latency
// percentiles, config; schema in EXPERIMENTS.md) so runs can be
// compared over time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nasd/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run shorter simulations with fewer points")
	which := flag.String("experiment", "all", "comma-separated experiment IDs, or 'all'")
	stats := flag.Bool("stats", false, "run a live workload and print the drive's measured per-op cost breakdown")
	statsMB := flag.Int("stats-mb", 8, "workload size in MB for -stats and per worker for -parallel")
	parallel := flag.Int("parallel", 0, "run N concurrent client workers over distinct objects on one drive and print throughput plus lock-contention telemetry")
	chaos := flag.Bool("chaos", false, "run the fault-tolerance soak: four drives, one severed mid-run and revived, every operation verified")
	chaosDur := flag.Duration("chaos-duration", 3*time.Second, "total soak length for -chaos (split across healthy/degraded/recovered phases)")
	chaosSeed := flag.Int64("seed", 1, "deterministic seed for the -chaos fault schedule and workload")
	jsonOut := flag.String("json", "", "also write a machine-readable BENCH_<name>.json result: a .json path names the file, anything else the directory (-stats, -parallel and -chaos only)")
	flag.Parse()

	if *chaos {
		if err := runChaos(os.Stdout, *chaosDur, *chaosSeed, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "nasdbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *parallel > 0 {
		if err := runParallel(os.Stdout, *parallel, *statsMB, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "nasdbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *stats {
		if err := runStats(os.Stdout, *statsMB, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "nasdbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	ids := experiments.IDs()
	if *which != "all" {
		ids = strings.Split(*which, ",")
	}
	for _, id := range ids {
		res, err := experiments.Run(strings.TrimSpace(id), *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nasdbench: %v\n", err)
			os.Exit(1)
		}
		res.Print(os.Stdout)
		fmt.Println()
	}
}
