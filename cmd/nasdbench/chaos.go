package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/cheops"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// runChaos is the fault-tolerance soak: four secure in-process drives
// behind per-drive fault injectors, a Cheops manager striping a RAID 5
// and a mirrored object across them, and workers writing and verifying
// deterministic data the whole time. A third of the way in, drive 2 is
// killed outright — connections severed, its server shut down, and its
// volatile write cache dropped, the storage model of a power cut. Two
// thirds in, the drive is restarted over the surviving media (the
// write-ahead journal replays its metadata at mount), every lane it
// carries is marked stale in the manager's repair ledger, the ledger
// is drained by reconstruction, and handles are reopened. The run
// fails unless every operation during the outage completes with
// correct data via degraded reads/writes, the breaker trips and then
// recloses, journal recovery actually replayed records, and the
// retry/failover counters advanced.
//
// Drive 2 — not drive 0 — takes the fault: the manager persists its
// directory through drive 0, so killing drive 0 would test manager
// durability, a different (and not yet redundant) property.
func runChaos(w io.Writer, dur time.Duration, seed int64, jsonOut string) error {
	const (
		nDrives    = 4
		victim     = 2
		stripeUnit = int64(16 << 10)
	)
	if dur < 300*time.Millisecond {
		dur = 300 * time.Millisecond
	}
	reg := telemetry.NewRegistry()
	ctx := context.Background()

	var (
		refs        []cheops.DriveRef
		drives      []*client.Drive
		faults      []*rpc.Faults
		seq         uint64            = 100
		victimInner *blockdev.MemDisk // durable media under the crash disk
		victimCrash *blockdev.CrashDisk
		victimSlot  *lnSlot
		victimKey   crypt.Key
	)
	srvs := make([]*rpc.Server, nDrives)
	defer func() {
		for _, s := range srvs {
			if s != nil {
				s.Close()
			}
		}
	}()
	policy := client.RetryPolicy{MaxAttempts: 5, AttemptTimeout: 250 * time.Millisecond}
	for i := 0; i < nDrives; i++ {
		master := crypt.NewRandomKey()
		inner := blockdev.NewMemDisk(4096, 16384)
		var dev blockdev.Device = inner
		if i == victim {
			// The victim sits behind a crash disk: a volatile write cache
			// whose contents vanish at the kill, leaving only what the
			// store explicitly flushed (journal commits included).
			victimInner, victimKey = inner, master
			victimCrash = blockdev.NewCrashDisk(inner, seed+1000)
			dev = victimCrash
		}
		drv, err := drive.NewFormat(dev, drive.Config{ID: uint64(1 + i), Master: master, Secure: true})
		if err != nil {
			return err
		}
		slot := &lnSlot{l: rpc.NewInProcListener(fmt.Sprintf("chaos%d", i))}
		srvs[i] = drv.Serve(slot.l)
		f := rpc.NewFaults(seed + int64(i))
		faults = append(faults, f)
		// Every connection to this drive — manager control traffic and
		// data-path legs alike — runs through its fault injector, and
		// every client can re-dial through it. The listener slot is one
		// more indirection: a restarted drive serves on a fresh listener,
		// and swapping it into the slot points every later redial at the
		// new server.
		if i == victim {
			victimSlot = slot
		}
		dial := func() (rpc.Conn, error) { return f.Dial(slot.dial) }
		mk := func() (*client.Drive, error) {
			conn, err := dial()
			if err != nil {
				return nil, err
			}
			seq++
			c := client.New(conn, uint64(1+i), seq,
				client.WithMetrics(reg), client.WithRetry(policy), client.WithDialer(dial))
			return c, nil
		}
		mgrCli, err := mk()
		if err != nil {
			return err
		}
		dataCli, err := mk()
		if err != nil {
			return err
		}
		defer mgrCli.Close()
		defer dataCli.Close()
		refs = append(refs, cheops.DriveRef{Client: mgrCli, DriveID: uint64(1 + i), Master: master})
		drives = append(drives, dataCli)
	}

	mgr, err := cheops.NewManager(ctx, cheops.ManagerConfig{
		Drives:          refs,
		Metrics:         reg,
		FailThreshold:   3,
		BreakerCooldown: 200 * time.Millisecond,
		LegTimeout:      2 * time.Second,
	}, true)
	if err != nil {
		return err
	}

	raidID, err := mgr.Create(ctx, cheops.RAID5, stripeUnit, 4, 0)
	if err != nil {
		return err
	}
	mirrorID, err := mgr.Create(ctx, cheops.Mirror1, stripeUnit, 3, 0)
	if err != nil {
		return err
	}

	workers := []*chaosWorker{
		newChaosWorker("raid5", raidID, 384<<10, seed+101),
		newChaosWorker("mirror", mirrorID, 128<<10, seed+202),
	}
	for _, cw := range workers {
		if err := cw.open(mgr, drives); err != nil {
			return err
		}
		if err := cw.initialize(ctx); err != nil {
			return fmt.Errorf("chaos: priming %s object: %w", cw.name, err)
		}
	}

	phase := func(name string, d time.Duration) error {
		until := time.Now().Add(d)
		errs := make([]error, len(workers))
		var wg sync.WaitGroup
		for i, cw := range workers {
			wg.Add(1)
			go func(i int, cw *chaosWorker) {
				defer wg.Done()
				errs[i] = cw.soak(ctx, until)
			}(i, cw)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("chaos: %s phase, %s worker: %w", name, workers[i].name, err)
			}
		}
		return nil
	}

	start := time.Now()
	fmt.Fprintf(w, "chaos soak: %d drives, victim=drive %d, duration=%v, seed=%d\n", nDrives, victim, dur, seed)
	if err := phase("healthy", dur/3); err != nil {
		return err
	}

	fmt.Fprintf(w, "  t=%-8v drive %d KILLED (connections severed, server down, volatile write cache lost)\n", time.Since(start).Round(time.Millisecond), victim)
	// Order matters: sever the network first so no request is in flight
	// when the server drains, then drop the write cache. The crash
	// leaves only what the store explicitly made durable — superblock,
	// journal commits, flushed data — exactly a power cut's residue.
	faults[victim].Down()
	srvs[victim].Close()
	victimCrash.Crash()
	if err := phase("degraded", dur/3); err != nil {
		return err
	}
	if st := mgr.DriveHealth(victim); st == cheops.BreakerClosed {
		return fmt.Errorf("chaos: drive %d breaker still closed after outage traffic", victim)
	}

	// Restart the drive over the surviving media. object.Open replays
	// the metadata journal, repairs reference counts, and reports what
	// it did; the drive then serves on a fresh listener swapped into the
	// victim's dial slot. The shared registry picks up the journal.*
	// counters and the recovery_ms gauge from the reopened store.
	reborn, err := drive.Open(victimInner, drive.Config{
		ID: uint64(1 + victim), Master: victimKey, Secure: true, Metrics: reg,
	})
	if err != nil {
		return fmt.Errorf("chaos: restarting crashed drive %d: %w", victim, err)
	}
	ri := reborn.Store().RecoveryInfo()
	fmt.Fprintf(w, "  t=%-8v drive %d restarted: journal replayed %d records (%d torn tails discarded), %d ref repairs, recovery took %v\n",
		time.Since(start).Round(time.Millisecond), victim, ri.Replayed, ri.TornTails, ri.RefRepairs, ri.Duration.Round(time.Microsecond))
	if ri.Replayed == 0 && ri.TornTails == 0 {
		return fmt.Errorf("chaos: drive %d recovery replayed nothing — the kill lost no state, so the crash path went unexercised", victim)
	}
	relisten := rpc.NewInProcListener(fmt.Sprintf("chaos%d-reborn", victim))
	srvs[victim] = reborn.Serve(relisten)
	victimSlot.set(relisten)

	// The journal restored the drive's metadata, but data writes it
	// acknowledged from volatile cache are gone: every lane it carries
	// is stale until rebuilt. Tell the manager so reads reconstruct
	// around the drive while RepairAll re-creates its components.
	stale := mgr.MarkDriveStale(victim, "restarted after crash: volatile cache contents lost")
	fmt.Fprintf(w, "  t=%-8v drive %d revived; %d lanes marked stale; draining repair ledger\n", time.Since(start).Round(time.Millisecond), victim, stale)
	faults[victim].Revive()
	repairDeadline := time.Now().Add(10 * time.Second)
	for len(mgr.PendingRepairs()) > 0 {
		if time.Now().After(repairDeadline) {
			return fmt.Errorf("chaos: repair ledger not drained: %d entries left", len(mgr.PendingRepairs()))
		}
		if _, err := mgr.RepairAll(ctx); err != nil {
			// A probe refused or failed while the breaker reopens is
			// expected; the next sweep retries.
			time.Sleep(50 * time.Millisecond)
			continue
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := mgr.DriveHealth(victim); st != cheops.BreakerClosed {
		return fmt.Errorf("chaos: drive %d breaker %v after successful repair, want closed", victim, st)
	}

	// Repair replaced component objects, so pre-outage handles are
	// stale (they would pay a reconstruction per access). Reopen.
	for _, cw := range workers {
		if err := cw.open(mgr, drives); err != nil {
			return fmt.Errorf("chaos: reopening %s after repair: %w", cw.name, err)
		}
	}
	if err := phase("recovered", dur/3); err != nil {
		return err
	}

	for _, cw := range workers {
		if err := cw.verifyAll(ctx); err != nil {
			return fmt.Errorf("chaos: final verification of %s object: %w", cw.name, err)
		}
	}

	snap := reg.Snapshot()
	elapsed := time.Since(start)
	var moved int64
	for _, cw := range workers {
		moved += cw.bytesMoved
	}
	mbps := float64(moved) / (1 << 20) / elapsed.Seconds()
	fmt.Fprintf(w, "  t=%-8v all phases complete; every operation verified\n\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "%-28s %10.1f MB/s (%d ops, %d MiB through the outage)\n",
		"soak throughput", mbps, workers[0].ops+workers[1].ops, moved>>20)
	printChaosCounters(w, snap)

	// Per-tenant attribution: each drive keys its op counters by the
	// capability's partition, in its own registry; pull every drive's
	// snapshot over the stats RPC and merge the splits fleet-wide.
	var driveMerged telemetry.Snapshot
	for i, cli := range drives {
		sr, serr := cli.ServerStats(ctx, drive.StatsArgs{})
		if serr != nil {
			return fmt.Errorf("chaos: stats from drive %d: %w", i, serr)
		}
		driveMerged.Merge(sr.Metrics)
	}
	tenants := tenantsFromSnapshot(driveMerged)
	if len(tenants) == 0 {
		return fmt.Errorf("chaos: no per-tenant counters on any drive — partition attribution went unexercised")
	}
	var tenantKeys []string
	for k := range tenants {
		tenantKeys = append(tenantKeys, k)
	}
	sort.Strings(tenantKeys)
	fmt.Fprintf(w, "\nper-tenant op split (merged from %d drives):\n", len(drives))
	for _, k := range tenantKeys {
		ts := tenants[k]
		fmt.Fprintf(w, "  %-10s %8d ops %6d errors %8.1f MiB in %8.1f MiB out  p99 %v\n",
			k, ts.Calls, ts.Errors,
			float64(ts.BytesIn)/(1<<20), float64(ts.BytesOut)/(1<<20),
			time.Duration(ts.P99NS).Round(time.Microsecond))
	}

	// Every subsystem in this process (manager, stores, reborn drive)
	// defaults its event log to the shared telemetry.Events ring; the
	// outage must have narrated itself there.
	events := telemetry.Events.Recent(0, telemetry.SevInfo)
	evSummary := eventSummary(events)
	var evKeys []string
	for k := range evSummary {
		evKeys = append(evKeys, k)
	}
	sort.Strings(evKeys)
	fmt.Fprintf(w, "\nevent log (%d events):\n", len(events))
	for _, k := range evKeys {
		fmt.Fprintf(w, "  %-28s %6d\n", k, evSummary[k])
	}
	if evSummary["cheops.breaker_open"] == 0 {
		return fmt.Errorf("chaos: no breaker_open event recorded for the outage")
	}
	if evSummary["cheops.breaker_close"] == 0 {
		return fmt.Errorf("chaos: no breaker_close event recorded after repair")
	}

	if snap.Counters["client.retries"] == 0 {
		return fmt.Errorf("chaos: client.retries did not advance — outage never exercised the retry path")
	}
	if snap.Counters["cheops.failovers"] == 0 {
		return fmt.Errorf("chaos: cheops.failovers did not advance — outage never exercised failover")
	}
	if snap.Counters["cheops.breaker_opens"] == 0 {
		return fmt.Errorf("chaos: breaker never opened during the outage")
	}
	if snap.Counters["journal.replays"] == 0 {
		return fmt.Errorf("chaos: journal.replays did not advance — restart recovery went unexercised")
	}

	if jsonOut != "" {
		return writeBenchJSON(jsonOut, benchResult{
			Name:       "chaos",
			Config:     benchConfig{SizeMB: int(moved >> 20), Workers: len(workers), Secure: true},
			Throughput: map[string]float64{"soak": mbps},
			Latency:    latencyFromSnapshot(snap),
			Counters:   chaosCounters(snap),
			Tenants:    tenants,
			Events:     evSummary,
		})
	}
	return nil
}

// chaosCounterNames are the resilience counters the chaos run reports.
// The journal.* pair comes from the victim's post-restart mount: how
// many committed intent records recovery replayed and how many torn
// record batches the scan discarded.
var chaosCounterNames = []string{
	"client.retries",
	"client.reconnects",
	"client.retries_exhausted",
	"cheops.failovers",
	"cheops.degraded_reads",
	"cheops.degraded_writes",
	"cheops.breaker_opens",
	"cheops.breaker_probes",
	"cheops.cap_renewals",
	"journal.replays",
	"journal.torn_tails",
}

func chaosCounters(snap telemetry.Snapshot) map[string]uint64 {
	out := make(map[string]uint64)
	for _, n := range chaosCounterNames {
		out[n] = snap.Counters[n]
	}
	// recovery_ms is a gauge (one value per restart); report it beside
	// the counters so BENCH_chaos.json carries the whole crash story.
	out["recovery_ms"] = uint64(snap.Gauges["recovery_ms"])
	return out
}

func printChaosCounters(w io.Writer, snap telemetry.Snapshot) {
	fmt.Fprintf(w, "%-28s %10s\n", "counter", "value")
	for _, n := range chaosCounterNames {
		fmt.Fprintf(w, "%-28s %10d\n", n, snap.Counters[n])
	}
	var breakers []string
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, "cheops.drive.") && strings.HasSuffix(name, ".breaker") {
			breakers = append(breakers, fmt.Sprintf("%s=%v", name, cheops.BreakerState(v)))
		}
	}
	sort.Strings(breakers)
	fmt.Fprintf(w, "%-28s %10d\n", "cheops.pending_repairs", snap.Gauges["cheops.pending_repairs"])
	fmt.Fprintf(w, "%-28s %10d\n", "recovery_ms", snap.Gauges["recovery_ms"])
	fmt.Fprintf(w, "breakers: %s\n", strings.Join(breakers, " "))
}

// lnSlot holds a drive's current listener behind a lock. The dial path
// captured by long-lived clients goes through the slot, so a restarted
// drive — serving on a fresh listener after its old one closed with
// its server — swaps the new listener in and every later redial lands
// on the new incarnation.
type lnSlot struct {
	mu sync.Mutex
	l  *rpc.InProcListener
}

func (s *lnSlot) set(l *rpc.InProcListener) {
	s.mu.Lock()
	s.l = l
	s.mu.Unlock()
}

func (s *lnSlot) dial() (rpc.Conn, error) {
	s.mu.Lock()
	l := s.l
	s.mu.Unlock()
	return l.Dial()
}

// chaosWorker soaks one logical object: random-offset writes of
// deterministic bytes mirrored into an in-memory model, each followed
// by a read-back window that must match the model exactly. All
// randomness flows from the run seed, so a failure replays.
type chaosWorker struct {
	name       string
	logical    uint64
	size       int
	rng        *rand.Rand
	model      []byte
	obj        *cheops.Object
	ops        int64
	bytesMoved int64
}

func newChaosWorker(name string, logical uint64, size int, seed int64) *chaosWorker {
	return &chaosWorker{
		name:    name,
		logical: logical,
		size:    size,
		rng:     rand.New(rand.NewSource(seed)),
		model:   make([]byte, size),
	}
}

func (cw *chaosWorker) open(mgr *cheops.Manager, drives []*client.Drive) error {
	obj, err := cheops.OpenObject(mgr, drives, cw.logical, capability.Read|capability.Write)
	if err != nil {
		return err
	}
	cw.obj = obj
	return nil
}

func (cw *chaosWorker) initialize(ctx context.Context) error {
	cw.rng.Read(cw.model)
	if err := cw.obj.WriteAt(ctx, 0, cw.model); err != nil {
		return err
	}
	cw.bytesMoved += int64(len(cw.model))
	return nil
}

func (cw *chaosWorker) soak(ctx context.Context, until time.Time) error {
	buf := make([]byte, 48<<10)
	for round := 0; time.Now().Before(until) || round == 0; round++ {
		n := 1 + cw.rng.Intn(len(buf))
		off := cw.rng.Intn(cw.size - n + 1)
		chunk := buf[:n]
		cw.rng.Read(chunk)
		if err := cw.obj.WriteAt(ctx, uint64(off), chunk); err != nil {
			return fmt.Errorf("write [%d,%d): %w", off, off+n, err)
		}
		copy(cw.model[off:], chunk)

		rn := 1 + cw.rng.Intn(len(buf))
		roff := cw.rng.Intn(cw.size - rn + 1)
		got, err := cw.obj.ReadAt(ctx, uint64(roff), rn)
		if err != nil {
			return fmt.Errorf("read [%d,%d): %w", roff, roff+rn, err)
		}
		if !bytes.Equal(got, cw.model[roff:roff+rn]) {
			return fmt.Errorf("read [%d,%d): data does not match the model", roff, roff+rn)
		}
		cw.ops += 2
		cw.bytesMoved += int64(n + rn)
	}
	return nil
}

func (cw *chaosWorker) verifyAll(ctx context.Context) error {
	got, err := cw.obj.ReadAt(ctx, 0, cw.size)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, cw.model) {
		for i := range got {
			if got[i] != cw.model[i] {
				return fmt.Errorf("byte %d differs (got %#x want %#x)", i, got[i], cw.model[i])
			}
		}
	}
	return nil
}
