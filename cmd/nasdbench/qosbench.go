package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/object"
	"nasd/internal/qos"
	"nasd/internal/rpc"
	"nasd/internal/telemetry"
)

// This file is the QoS heavy-traffic workload: one qos-armed drive, a
// well-behaved victim tenant (partition 1, closed-loop 4 KiB reads
// with think time), and a hot aggressor tenant (partition 2, ~10x the
// victim's offered load from many open-loop Poisson "clients" with
// Zipf-distributed hot spots, 16 KiB reads — large enough to hold the
// simulated spindle a few hundred microseconds per op, small enough
// that no single admitted op wrecks a bystander's tail). Phase 1
// measures the victim alone; phase 2 turns the aggressor loose. The run FAILS —
// exits nonzero, so check.sh can gate on it — unless:
//
//   - every victim request eventually succeeded (zero failures);
//   - the victim's contended p99 stays within ratioBound (3x) of its
//     solo baseline (with a small absolute floor so a sub-millisecond
//     solo p99 cannot make the bound meaninglessly tight);
//   - overload surfaced only as typed retry-later replies: neither
//     tenant saw a transport error or any other failure shape.
//
// The drive sits on a throttled memory disk so media service times are
// stable across machines, and the qos plane runs the same knobs the
// nasdd -qos-* flags expose: WDRR weights favoring the victim, a
// per-tenant token bucket that clamps the aggressor's sustainable
// rate, bounded per-tenant queues, and deadline shedding.

const (
	qosVictimPart    uint16 = 1
	qosAggressorPart uint16 = 2
	qosObjectBytes          = 2 << 20
	qosRatioBound           = 3.0
	// qosSoloFloor keeps the bound honest in both directions: an
	// unrealistically fast solo baseline (all cache hits) cannot make
	// 3x vacuously tight. 3 ms is a handful of serialized media ops on
	// the throttled spindle — scheduler jitter on a loaded 1-CPU host
	// lands inside it, while real starvation (an unprotected drive
	// under this flood queues for seconds) blows far past it.
	qosSoloFloor = 3 * time.Millisecond
)

// qosTraffic aggregates one tenant's client-side outcomes.
type qosTraffic struct {
	ok        atomic.Uint64 // requests that eventually succeeded
	shed      atomic.Uint64 // surfaced as ErrOverloaded after retries
	failed    atomic.Uint64 // anything else: the shapes the run forbids
	deadline  atomic.Uint64 // caller deadline expired while pacing
	issuedAgg atomic.Uint64 // aggressor arrivals generated (open loop)
}

func runQoS(w io.Writer, phaseDur time.Duration, aggressors int, seed int64, jsonOut string) error {
	if aggressors < 1 {
		aggressors = 1000
	}
	reg := telemetry.NewRegistry()
	events := telemetry.NewEventLog(256)
	// 96 MB/s + 100µs/op: a fast-drive service model, enough that the
	// aggressor's offered load is the bottleneck, not the bench host.
	dev := blockdev.NewThrottle(blockdev.NewMemDisk(4096, 32768), 96<<20, 100*time.Microsecond)
	drv, err := drive.NewFormat(dev, drive.Config{
		ID: 1, Master: crypt.NewRandomKey(), Metrics: reg, Events: events,
		Store: object.Config{CacheBlocks: 16}, // tiny cache: reads pay media time
	})
	if err != nil {
		return err
	}

	// Seed one object per tenant through the drive handler directly
	// (setup traffic should not pass the qos plane it is about to test).
	objs := make(map[uint16]uint64, 2)
	for _, part := range []uint16{qosVictimPart, qosAggressorPart} {
		rep := drv.Handle(&rpc.Request{Proc: uint16(drive.OpCreatePartition),
			Args: (&drive.PartArgs{Partition: part}).Encode()})
		if rep.Status != rpc.StatusOK {
			return fmt.Errorf("mkpart %d: %v %s", part, rep.Status, rep.Msg)
		}
		rep = drv.Handle(&rpc.Request{Proc: uint16(drive.OpCreateObject),
			Args: (&drive.ObjArgs{Partition: part}).Encode()})
		if rep.Status != rpc.StatusOK {
			return fmt.Errorf("create: %v %s", rep.Status, rep.Msg)
		}
		id, err := drive.DecodeIDReply(rep.Args)
		if err != nil {
			return err
		}
		rep = drv.Handle(&rpc.Request{Proc: uint16(drive.OpWriteObject),
			Args: (&drive.WriteArgs{Partition: part, Object: id}).Encode(),
			Data: make([]byte, qosObjectBytes)})
		if rep.Status != rpc.StatusOK {
			return fmt.Errorf("seed write: %v %s", rep.Status, rep.Msg)
		}
		objs[part] = id
	}

	// The qos plane under test: victim weighted 4:1 over the aggressor,
	// and a token bucket sized so the victim's offered load (~400
	// units/s of 4 KiB reads) fits under the refill rate with room,
	// while the aggressor's 10x flood of 16 KiB reads does not —
	// rejections land on the tenant causing the pressure, and the
	// shallow burst keeps the flood from buying seconds of queue depth
	// up front. Units are ~32 KiB cost units.
	ctl := qos.New(drv, qos.Config{
		Classify:    drive.QoSClassify,
		Concurrency: 2,
		Queue:       256,
		TenantQueue: 64,
		Rate:        450,
		Burst:       100,
		Weights: map[string]int64{
			"part.1": 4,
			"part.2": 1,
		},
		Shed:    true,
		Metrics: reg,
		Events:  events,
	})
	defer ctl.Close()

	l := rpc.NewInProcListener("nasdbench-qos")
	srv := rpc.NewServer(ctl,
		rpc.WithMetrics(reg),
		rpc.WithQueue(2048),
		rpc.WithProcNames(func(p uint16) string { return drive.Op(p).String() }))
	defer srv.Close()
	go srv.Serve(l)

	newClient := func(id uint64, attempts int) (*client.Drive, error) {
		// The in-proc listener's accept backlog is small; when this
		// setup loop outruns the server's accept goroutine, back off
		// briefly instead of failing the bench.
		var conn rpc.Conn
		for try := 0; ; try++ {
			var err error
			if conn, err = l.Dial(); err == nil {
				break
			}
			if try >= 50 {
				return nil, err
			}
			time.Sleep(time.Millisecond)
		}
		return client.New(conn, 1, id, client.WithSecurity(false),
			client.WithRetry(client.RetryPolicy{MaxAttempts: attempts})), nil
	}

	// Victim: a handful of closed-loop clients with think time — the
	// well-behaved tenant whose latency the qos plane must protect.
	const victims = 4
	const victimThink = 10 * time.Millisecond
	victimClis := make([]*client.Drive, victims)
	for i := range victimClis {
		if victimClis[i], err = newClient(uint64(100+i), 8); err != nil {
			return err
		}
		defer victimClis[i].Close()
	}

	// Aggressor: `aggressors` simulated open-loop clients multiplexed
	// over a pool of connections, each arriving Poisson at a combined
	// ~10x the victim's offered rate, reading 16 KiB at Zipf-hot
	// offsets.
	const aggConns = 16
	aggClis := make([]*client.Drive, aggConns)
	for i := range aggClis {
		if aggClis[i], err = newClient(uint64(500+i), 3); err != nil {
			return err
		}
		defer aggClis[i].Close()
	}
	victimOffered := float64(victims) / victimThink.Seconds() // ops/s, upper bound
	aggRate := 10 * victimOffered                             // combined arrivals/s
	meanGap := time.Duration(float64(aggressors) / aggRate * float64(time.Second))

	var vt, at qosTraffic
	victimPhase := func(dur time.Duration) ([]time.Duration, error) {
		var mu sync.Mutex
		var lat []time.Duration
		var wg sync.WaitGroup
		stop := time.Now().Add(dur)
		errc := make(chan error, victims)
		for i := 0; i < victims; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(i)))
				for n := 0; time.Now().Before(stop); n++ {
					off := uint64(rng.Intn(qosObjectBytes/4096)) * 4096
					ctx, cancel := context.WithTimeout(context.Background(), time.Second)
					start := time.Now()
					_, err := victimClis[i].ReadPipelined(ctx, nil, qosVictimPart, objs[qosVictimPart], off, 4096)
					cancel()
					switch {
					case err == nil:
						vt.ok.Add(1)
						mu.Lock()
						lat = append(lat, time.Since(start))
						mu.Unlock()
					case errors.Is(err, client.ErrOverloaded):
						vt.shed.Add(1)
					case errors.Is(err, context.DeadlineExceeded):
						vt.deadline.Add(1)
					default:
						vt.failed.Add(1)
						select {
						case errc <- fmt.Errorf("victim %d: %w", i, err):
						default:
						}
					}
					time.Sleep(victimThink)
				}
			}(i)
		}
		wg.Wait()
		select {
		case err := <-errc:
			return lat, err
		default:
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat, nil
	}

	// ---- Phase 1: victim alone -------------------------------------
	soloLat, err := victimPhase(phaseDur)
	if err != nil {
		return err
	}
	if len(soloLat) == 0 {
		return fmt.Errorf("solo phase produced no victim completions")
	}
	p99Solo := pct(soloLat, 0.99)

	// ---- Phase 2: aggressor flood ----------------------------------
	aggStop := make(chan struct{})
	var aggWG sync.WaitGroup
	for g := 0; g < aggressors; g++ {
		aggWG.Add(1)
		go func(g int) {
			defer aggWG.Done()
			rng := rand.New(rand.NewSource(seed + 10_000 + int64(g)))
			zipf := rand.NewZipf(rng, 1.2, 1, qosObjectBytes/4096-17)
			cli := aggClis[g%aggConns]
			for {
				// Open loop: the arrival process does not slow down just
				// because the drive is rejecting — that is the point.
				gap := time.Duration(rng.ExpFloat64() * float64(meanGap))
				select {
				case <-aggStop:
					return
				case <-time.After(gap):
				}
				at.issuedAgg.Add(1)
				off := zipf.Uint64() * 4096
				ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
				_, err := cli.ReadPipelined(ctx, nil, qosAggressorPart, objs[qosAggressorPart], off, 16<<10)
				cancel()
				switch {
				case err == nil:
					at.ok.Add(1)
				case errors.Is(err, client.ErrOverloaded):
					at.shed.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					at.deadline.Add(1)
				default:
					at.failed.Add(1)
				}
			}
		}(g)
	}
	contLat, verr := victimPhase(phaseDur)
	close(aggStop)
	aggWG.Wait()
	if verr != nil {
		return verr
	}
	if len(contLat) == 0 {
		return fmt.Errorf("contended phase produced no victim completions")
	}
	p99Cont := pct(contLat, 0.99)

	// ---- Report ------------------------------------------------------
	snap := reg.Snapshot()
	base := p99Solo
	if base < qosSoloFloor {
		base = qosSoloFloor
	}
	ratio := float64(p99Cont) / float64(base)
	fmt.Fprintf(w, "nasdbench -workload qos: %d aggressor clients at ~%.0f arrivals/s vs %d victim readers\n",
		aggressors, aggRate, victims)
	fmt.Fprintf(w, "  victim solo:      %6d ops  p50 %8s  p99 %8s\n",
		len(soloLat), pct(soloLat, 0.50).Round(time.Microsecond), p99Solo.Round(time.Microsecond))
	fmt.Fprintf(w, "  victim contended: %6d ops  p50 %8s  p99 %8s  (%.2fx of solo baseline, bound %.1fx)\n",
		len(contLat), pct(contLat, 0.50).Round(time.Microsecond), p99Cont.Round(time.Microsecond), ratio, qosRatioBound)
	fmt.Fprintf(w, "  victim outcomes:    ok=%d shed=%d deadline=%d failed=%d\n",
		vt.ok.Load(), vt.shed.Load(), vt.deadline.Load(), vt.failed.Load())
	fmt.Fprintf(w, "  aggressor outcomes: issued=%d ok=%d shed=%d deadline=%d failed=%d\n",
		at.issuedAgg.Load(), at.ok.Load(), at.shed.Load(), at.deadline.Load(), at.failed.Load())
	fmt.Fprintf(w, "  drive qos verdicts: admitted=%d throttled=%d shed=%d rejected=%d rpc-rejected=%d\n",
		snap.Counters["qos.admitted"], snap.Counters["qos.throttled"],
		snap.Counters["qos.shed"], snap.Counters["qos.rejected"],
		snap.Counters["rpc.server.rejected"])
	telemetry.WriteTenantTable(w, snap, "bench cumulative")

	// ---- Assertions (the run's exit status IS the regression gate) ---
	var fails []string
	if vt.failed.Load() > 0 || vt.shed.Load() > 0 || vt.deadline.Load() > 0 {
		fails = append(fails, fmt.Sprintf(
			"victim saw non-success outcomes (shed=%d deadline=%d failed=%d): the well-behaved tenant must be untouched",
			vt.shed.Load(), vt.deadline.Load(), vt.failed.Load()))
	}
	if at.failed.Load() > 0 {
		fails = append(fails, fmt.Sprintf(
			"aggressor saw %d non-retry-later failures: overload must surface only as typed backpressure", at.failed.Load()))
	}
	if float64(p99Cont) > qosRatioBound*float64(base) {
		fails = append(fails, fmt.Sprintf(
			"victim p99 %v breached %gx of its solo baseline %v (floor %v): hot tenant starved the victim",
			p99Cont, qosRatioBound, p99Solo, qosSoloFloor))
	}
	if snap.Counters["drive.part.2.qos.throttled"]+snap.Counters["drive.part.2.qos.rejected"]+snap.Counters["drive.part.2.qos.shed"] == 0 {
		fails = append(fails, "aggressor was never limited: the flood did not exercise the qos plane")
	}

	if jsonOut != "" {
		lat := latencyFromSnapshot(snap)
		lat["bench.victim.solo_ns"] = summarize(soloLat)
		lat["bench.victim.contended_ns"] = summarize(contLat)
		res := benchResult{
			Name:   "qos",
			Config: benchConfig{Workers: aggressors, Secure: false},
			Throughput: map[string]float64{
				"victim_ops_per_sec":    float64(len(contLat)) / phaseDur.Seconds(),
				"aggressor_ops_per_sec": float64(at.ok.Load()) / phaseDur.Seconds(),
			},
			Latency: lat,
			Counters: map[string]uint64{
				"victim_ok":             vt.ok.Load(),
				"victim_shed":           vt.shed.Load(),
				"victim_deadline":       vt.deadline.Load(),
				"victim_failed":         vt.failed.Load(),
				"aggressor_issued":      at.issuedAgg.Load(),
				"aggressor_ok":          at.ok.Load(),
				"aggressor_shed":        at.shed.Load(),
				"aggressor_deadline":    at.deadline.Load(),
				"aggressor_failed":      at.failed.Load(),
				"qos_admitted":          snap.Counters["qos.admitted"],
				"qos_throttled":         snap.Counters["qos.throttled"],
				"qos_shed":              snap.Counters["qos.shed"],
				"qos_rejected":          snap.Counters["qos.rejected"],
				"rpc_server_rejected":   snap.Counters["rpc.server.rejected"],
				"p99_ratio_x100":        uint64(ratio * 100),
				"starvation_assert_ok":  boolCounter(len(fails) == 0),
				"victim_p99_solo_ns":    uint64(p99Solo),
				"victim_p99_contend_ns": uint64(p99Cont),
			},
			Tenants: tenantsFromSnapshot(snap),
			Events:  eventSummary(events.Recent(256, telemetry.SevInfo)),
		}
		if err := writeBenchJSON(jsonOut, res); err != nil {
			return err
		}
	}

	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintf(w, "FAIL: %s\n", f)
		}
		return fmt.Errorf("qos workload failed %d assertion(s)", len(fails))
	}
	fmt.Fprintf(w, "PASS: victim p99 held within %.1fx of solo under a ~10x flood with zero victim failures\n", qosRatioBound)
	return nil
}

// pct returns the p-quantile of sorted latencies.
func pct(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted)) * p)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// summarize condenses a sorted latency slice into the bench JSON shape.
func summarize(sorted []time.Duration) latencySummary {
	var sum int64
	for _, d := range sorted {
		sum += int64(d)
	}
	mean := int64(0)
	if len(sorted) > 0 {
		mean = sum / int64(len(sorted))
	}
	return latencySummary{
		Count: uint64(len(sorted)),
		Mean:  mean,
		P50:   int64(pct(sorted, 0.50)),
		P95:   int64(pct(sorted, 0.95)),
		P99:   int64(pct(sorted, 0.99)),
		Max:   int64(pct(sorted, 1.0)),
	}
}

func boolCounter(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
