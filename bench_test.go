package nasd_test

// One benchmark per table and figure in the paper's evaluation (each
// regenerates the experiment through internal/experiments), plus
// microbenchmarks of the functional hot paths: keyed digests,
// capability validation, codec, object store, and the full RPC drive
// path. Run with: go test -bench=. -benchmem
//
// Ablations at the bottom quantify the design choices DESIGN.md calls
// out: security on versus off (the paper ran with security disabled),
// and DCE-class versus lean RPC cost models.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"nasd/internal/blockdev"
	"nasd/internal/capability"
	"nasd/internal/client"
	"nasd/internal/crypt"
	"nasd/internal/drive"
	"nasd/internal/experiments"
	"nasd/internal/mining"
	"nasd/internal/object"
	"nasd/internal/rpc"
)

// --- Table/figure regeneration benchmarks ---------------------------------

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, true)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig4(b *testing.B)        { benchExperiment(b, "fig4") }
func BenchmarkTable1(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkFig6(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)        { benchExperiment(b, "fig7") }
func BenchmarkFig9(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkAndrew(b *testing.B)      { benchExperiment(b, "andrew") }
func BenchmarkActiveDisks(b *testing.B) { benchExperiment(b, "active") }

// --- Functional microbenchmarks --------------------------------------------

func BenchmarkMACVerify(b *testing.B) {
	key := crypt.NewRandomKey()
	msg := make([]byte, 256)
	d := crypt.MAC(key, msg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !crypt.Verify(key, msg, d) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkCapabilityValidate(b *testing.B) {
	h := crypt.NewHierarchy(crypt.NewRandomKey())
	if err := h.AddPartition(1); err != nil {
		b.Fatal(err)
	}
	kid, key, _ := h.CurrentWorkingKey(1)
	pub := capability.Public{
		DriveID: 1, Partition: 1, Object: 42, ObjVer: 1,
		Rights: capability.Read, Expiry: time.Now().Add(time.Hour).UnixNano(), Key: kid,
	}
	cap := capability.Mint(pub, key)
	body := make([]byte, 128)
	dig := cap.SignRequest(body)
	chk := capability.Check{DriveID: 1, Part: 1, Object: 42, ObjVer: 1, Op: capability.Read, Now: time.Now()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := capability.Validate(pub, body, dig, chk, h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRequestCodec(b *testing.B) {
	req := &rpc.Request{
		Proc: 1, Cap: make([]byte, 59), Args: make([]byte, 26),
		Data: make([]byte, 8192), Nonce: crypt.Nonce{Client: 1, Counter: 7},
	}
	b.SetBytes(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire := rpc.EncodeRequest(req)
		if _, err := rpc.DecodeMessage(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func newBenchStore(b *testing.B) *object.Store {
	b.Helper()
	dev := blockdev.NewMemDisk(4096, 1<<16)
	st, err := object.Format(dev, object.Config{CacheBlocks: 4096})
	if err != nil {
		b.Fatal(err)
	}
	if err := st.CreatePartition(1, 0); err != nil {
		b.Fatal(err)
	}
	return st
}

func BenchmarkObjectWrite64K(b *testing.B) {
	st := newBenchStore(b)
	id, _ := st.Create(1)
	data := make([]byte, 64<<10)
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := uint64(i%64) * (64 << 10)
		if err := st.Write(1, id, off, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObjectRead64K(b *testing.B) {
	st := newBenchStore(b)
	id, _ := st.Create(1)
	if err := st.Write(1, id, 0, make([]byte, 4<<20)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := uint64(i%64) * (64 << 10)
		if _, err := st.Read(1, id, off, 64<<10); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSeqWrite streams 64 KB writes into one object, wrapping every
// 4 MB with a Flush — the metadata journal's worst sequential-write
// case, since every write journals (and group-commits) an onode image
// and every flush journals the refcount batch. The On/Off pair prices
// the write-ahead journal (DESIGN.md §7); EXPERIMENTS.md records the
// measured delta against its ≤15 % acceptance bound.
func benchSeqWrite(b *testing.B, journaled bool) {
	dev := blockdev.NewMemDisk(4096, 32768)
	opts := []object.Option{object.WithCacheBlocks(4096)}
	if !journaled {
		opts = append(opts, object.WithJournalBlocks(-1))
	}
	st, err := object.FormatStore(dev, opts...)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.CreatePartition(1, 0); err != nil {
		b.Fatal(err)
	}
	id, err := st.Create(1)
	if err != nil {
		b.Fatal(err)
	}
	const chunk = 64 << 10
	const passChunks = (4 << 20) / chunk
	data := make([]byte, chunk)
	b.SetBytes(chunk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := uint64(i%passChunks) * chunk
		if err := st.Write(1, id, off, data); err != nil {
			b.Fatal(err)
		}
		if i%passChunks == passChunks-1 {
			if err := st.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSeqWriteJournalOn(b *testing.B)  { benchSeqWrite(b, true) }
func BenchmarkSeqWriteJournalOff(b *testing.B) { benchSeqWrite(b, false) }

func BenchmarkObjectSnapshot(b *testing.B) {
	st := newBenchStore(b)
	id, _ := st.Create(1)
	if err := st.Write(1, id, 0, make([]byte, 1<<20)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := st.VersionObject(1, id)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := st.Remove(1, snap); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// driveRig serves a drive over the in-process transport for end-to-end
// RPC benchmarks.
func driveRig(b testing.TB, secure bool) (*client.Drive, capability.Capability, uint64) {
	b.Helper()
	master := crypt.NewRandomKey()
	dev := blockdev.NewMemDisk(4096, 1<<16)
	drv, err := drive.NewFormat(dev, drive.Config{ID: 1, Master: master, Secure: secure})
	if err != nil {
		b.Fatal(err)
	}
	l := rpc.NewInProcListener("bench")
	srv := drv.Serve(l)
	b.Cleanup(srv.Close)
	if err := drv.Store().CreatePartition(1, 0); err != nil {
		b.Fatal(err)
	}
	if err := drv.Keys().AddPartition(1); err != nil {
		b.Fatal(err)
	}
	obj, err := drv.Store().Create(1)
	if err != nil {
		b.Fatal(err)
	}
	if err := drv.Store().Write(1, obj, 0, make([]byte, 4<<20)); err != nil {
		b.Fatal(err)
	}
	conn, err := l.Dial()
	if err != nil {
		b.Fatal(err)
	}
	cli := client.New(conn, 1, 99, client.WithSecurity(secure))
	b.Cleanup(func() { cli.Close() })
	kid, key, _ := drv.Keys().CurrentWorkingKey(1)
	cap := capability.Mint(capability.Public{
		DriveID: 1, Partition: 1, Object: obj, ObjVer: 1,
		Rights: capability.Read | capability.Write,
		Expiry: time.Now().Add(time.Hour).UnixNano(), Key: kid,
	}, key)
	return cli, cap, obj
}

func benchDriveRead(b *testing.B, secure bool, size int) {
	cli, cap, obj := driveRig(b, secure)
	// ReadInto is the steady-state client read path: reply frames are
	// recycled into the buffer pool instead of falling to the GC.
	dst := make([]byte, size)
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := uint64(i%32) * uint64(size)
		if _, err := cli.ReadInto(context.Background(), &cap, 1, obj, off, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the full NASD request path with and without the security
// protocol, at the paper's two interesting sizes. The delta is the cost
// of the capability architecture in software — the quantity the paper
// argues belongs in drive ASIC hardware.
func BenchmarkDriveReadSecure8K(b *testing.B)     { benchDriveRead(b, true, 8<<10) }
func BenchmarkDriveReadInsecure8K(b *testing.B)   { benchDriveRead(b, false, 8<<10) }
func BenchmarkDriveReadSecure512K(b *testing.B)   { benchDriveRead(b, true, 512<<10) }
func BenchmarkDriveReadInsecure512K(b *testing.B) { benchDriveRead(b, false, 512<<10) }

// tcpDriveRig serves a drive over real TCP loopback with modeled
// service times — a 300 MB/s media throttle under a deliberately small
// block cache, and a 300 MB/s link throttle on the wire — so the rig
// has the latency structure of real storage instead of loopback's
// memory-speed transfers. Both the serial and pipelined benchmarks run
// over this same stack.
func tcpDriveRig(b *testing.B, opts ...client.Option) (*client.Drive, capability.Capability, uint64) {
	b.Helper()
	// The store re-reads extent metadata under cache pressure (~4x
	// device reads per payload byte at this cache size), so 128 MB/s of
	// raw media bandwidth delivers roughly the link's 32 MB/s in
	// payload terms — a balanced media/wire regime like the paper's
	// (fast-SCSI drives behind OC-3-class links), which is where
	// pipelining pays.
	const mediaBps = 512 << 20
	const linkBps = 256 << 20
	master := crypt.NewRandomKey()
	dev := blockdev.NewThrottle(blockdev.NewMemDisk(4096, 1<<16), mediaBps, 0)
	// A 1 MB cache under a 4 MB working set: metadata stays hot, data
	// reads miss to the (throttled) media like a real streaming scan.
	drv, err := drive.NewFormat(dev, drive.Config{
		ID: 1, Master: master, Secure: true,
		Store: object.Config{CacheBlocks: 256},
	})
	if err != nil {
		b.Fatal(err)
	}
	tl, err := rpc.ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := drv.Serve(rpc.NewThrottledListener(tl, linkBps))
	b.Cleanup(srv.Close)
	if err := drv.Store().CreatePartition(1, 0); err != nil {
		b.Fatal(err)
	}
	if err := drv.Keys().AddPartition(1); err != nil {
		b.Fatal(err)
	}
	obj, err := drv.Store().Create(1)
	if err != nil {
		b.Fatal(err)
	}
	if err := drv.Store().Write(1, obj, 0, make([]byte, 4<<20)); err != nil {
		b.Fatal(err)
	}
	conn, err := rpc.DialTCP(tl.Addr())
	if err != nil {
		b.Fatal(err)
	}
	cli := client.New(rpc.NewThrottledConn(conn, linkBps), 1, 99, opts...)
	b.Cleanup(func() { cli.Close() })
	kid, key, _ := drv.Keys().CurrentWorkingKey(1)
	cap := capability.Mint(capability.Public{
		DriveID: 1, Partition: 1, Object: obj, ObjVer: 1,
		Rights: capability.Read | capability.Write,
		Expiry: time.Now().Add(time.Hour).UnixNano(), Key: kid,
	}, key)
	return cli, cap, obj
}

// BenchmarkPipelinedRead: the tentpole number. A large transfer over
// TCP as one serial Read versus a windowed pipeline of 64 KB fragments.
// The serial path is strictly sequential — the drive reads the whole
// object off the media, then streams the single reply down the wire —
// while the pipeline keeps several fragments in flight so media time
// and wire time overlap (paper §5.3, Figure 9's access-pattern argument
// applied to the RPC plane).
func benchPipelinedRead(b *testing.B, size int, pipelined bool) {
	cli, cap, obj := tcpDriveRig(b, client.WithFragmentSize(64<<10), client.WithWindow(8))
	ctx := context.Background()
	slots := (4 << 20) / size // rotate so iterations don't reread cached data
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := uint64(i%slots) * uint64(size)
		var err error
		var got []byte
		if pipelined {
			got, err = cli.ReadPipelined(ctx, &cap, 1, obj, off, size)
		} else {
			got, err = cli.Read(ctx, &cap, 1, obj, off, size)
		}
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != size {
			b.Fatalf("short read: %d", len(got))
		}
	}
}

func BenchmarkPipelinedRead256K(b *testing.B) { benchPipelinedRead(b, 256<<10, true) }
func BenchmarkSerialRead256K(b *testing.B)    { benchPipelinedRead(b, 256<<10, false) }
func BenchmarkPipelinedRead1M(b *testing.B)   { benchPipelinedRead(b, 1<<20, true) }
func BenchmarkSerialRead1M(b *testing.B)      { benchPipelinedRead(b, 1<<20, false) }

func BenchmarkMiningPass1(b *testing.B) {
	data := mining.Generate(mining.GenConfig{CatalogSize: 1000, TotalBytes: 4 << 20, Seed: 1})
	counts := make([]uint32, 1000)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mining.CountItems(data, counts)
	}
}

// Ablation: DCE-class vs lean RPC instruction costs across request
// sizes — the paper's "workstation-class implementations of
// communications certainly are [too expensive]" argument in numbers.
func BenchmarkRPCCostModels(b *testing.B) {
	for _, size := range []int{1, 8 << 10, 64 << 10, 512 << 10} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				c := drive.CostModel(drive.OpReadObject, size, false)
				sink += c.Total()
			}
			c := drive.CostModel(drive.OpReadObject, size, false)
			b.ReportMetric(float64(c.Total()), "DCE-instr")
			// The lean stack the paper anticipates for commodity drives.
			lean := 5000 + 0.4*float64(size)
			b.ReportMetric(lean, "lean-instr")
			_ = sink
		})
	}
}
