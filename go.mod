module nasd

go 1.22
