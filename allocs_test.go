package nasd_test

// Allocation regression tests for the zero-copy data path. These pin
// the steady-state allocs/op of the two hottest paths — the codec
// round-trip and the end-to-end cached drive read — so a change that
// quietly reintroduces per-request copies or drops a buffer back to
// the GC fails here, not in benchmark archaeology.

import (
	"context"
	"testing"

	"nasd/internal/bufpool"
	"nasd/internal/crypt"
	"nasd/internal/rpc"
)

// TestCodecRoundTripAllocs pins the plain encode+decode round-trip.
// EncodeRequest allocates the frame and DecodeMessage the message
// struct; everything else must alias.
func TestCodecRoundTripAllocs(t *testing.T) {
	req := &rpc.Request{
		Proc: 1, Cap: make([]byte, 59), Args: make([]byte, 26),
		Data: make([]byte, 8192), Nonce: crypt.Nonce{Client: 1, Counter: 7},
	}
	avg := testing.AllocsPerRun(200, func() {
		wire := rpc.EncodeRequest(req)
		if _, err := rpc.DecodeMessage(wire); err != nil {
			t.Fatal(err)
		}
	})
	// Measured 4 at the time of writing (header grow + frame + Request
	// + decoder); the bound leaves headroom for harness noise only.
	if avg > 8 {
		t.Errorf("codec round-trip allocates %.1f/op, want <= 8", avg)
	}
}

// TestPooledEncodeAllocs pins the transport's actual send path: header
// appended into a pooled buffer, payload attached by reference. Only
// the decode side may allocate (the message struct).
func TestPooledEncodeAllocs(t *testing.T) {
	req := &rpc.Request{
		Proc: 1, Cap: make([]byte, 59), Args: make([]byte, 26),
		Data: make([]byte, 8192), Nonce: crypt.Nonce{Client: 1, Counter: 7},
	}
	// Warm the pool classes used.
	bufpool.Put(bufpool.Get(512))
	avg := testing.AllocsPerRun(200, func() {
		hdr := rpc.AppendRequestHeader(bufpool.Get(160+len(req.Cap)+len(req.Args)), req)
		bufpool.Put(hdr)
	})
	if avg > 1 {
		t.Errorf("pooled header encode allocates %.1f/op, want <= 1", avg)
	}
}

// TestDriveCachedReadAllocs pins the full client→RPC→drive→cache read
// path on a warm cache. The pre-pooling baseline was 83 allocs/op; the
// acceptance bound for the zero-copy path is half that. (Measured 29
// at the time of writing.)
func TestDriveCachedReadAllocs(t *testing.T) {
	cli, cap, obj := driveRig(t, true)
	dst := make([]byte, 8<<10)
	ctx := context.Background()
	// Warm the block cache and the capability digest cache.
	for i := 0; i < 4; i++ {
		if _, err := cli.ReadInto(ctx, &cap, 1, obj, 0, dst); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := cli.ReadInto(ctx, &cap, 1, obj, 0, dst); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 41 {
		t.Errorf("cached 8K drive read allocates %.1f/op, want <= 41 (half the 83 pre-pooling baseline)", avg)
	}
}
