#!/bin/sh
# The repository's test gate: static analysis plus the full test suite
# under the race detector. CI and pre-commit hooks should run exactly
# this script so local and automated checks never drift.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "OK"
