#!/bin/sh
# The repository's test gate: formatting, static analysis, and the full
# test suite under the race detector. CI and pre-commit hooks should run
# exactly this script so local and automated checks never drift.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# Benchmark smoke: every benchmark must still run (one iteration each);
# regressions in benchmark-only code paths surface here, not in CI
# archaeology.
echo "==> go test -run '^$' -bench . -benchtime 1x ./..."
go test -run '^$' -bench . -benchtime 1x ./...

# End-to-end bench smoke: a small live -stats run must complete and
# emit a machine-readable result (schema in EXPERIMENTS.md). CI uploads
# the BENCH_*.json as an artifact for run-over-run comparison.
echo "==> go run ./cmd/nasdbench -stats -stats-mb 2 -json ."
go run ./cmd/nasdbench -stats -stats-mb 2 -json . > /dev/null
test -s BENCH_stats.json

echo "OK"
