#!/bin/sh
# The repository's test gate: formatting, static analysis, and the full
# test suite under the race detector. CI and pre-commit hooks should run
# exactly this script so local and automated checks never drift.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# Fault-tolerance focus: rerun the fault/retry/failover tests by name so
# a resilience regression is called out explicitly instead of hiding in
# the full-suite output above.
echo "==> go test -race -run 'Faults|Retry|Reconnect|NeverSent|FateUnknown|Breaker|Chaos|Rollback|Hang|CapabilityRenewal' (fault-tolerance focus)"
go test -race \
    -run 'Faults|Retry|Reconnect|NeverSent|FateUnknown|Breaker|Chaos|Rollback|Hang|CapabilityRenewal' \
    ./internal/rpc ./internal/client ./internal/cheops ./internal/blockdev

# Crash-consistency focus: re-run the DESIGN.md §7 durability tests by
# name — journal framing/commit/replay, CrashDisk semantics, and a
# short-mode crash sweep — so a recovery regression is called out
# explicitly. The full 1000+-point sweep runs in the suite above and,
# with -v, in CI's dedicated crash-sweep job.
echo "==> go test -race -short -run 'Crash|Journal|Torn|Recover|Checkpoint|Commit' (crash-consistency focus)"
go test -race -short \
    -run 'Crash|Journal|Torn|Recover|Checkpoint|Commit' \
    ./internal/journal ./internal/blockdev ./internal/object

# Chaos smoke: the kill/restart soak from DESIGN.md §6-§7 must pass end
# to end — the victim drive is killed mid-run (server down, volatile
# cache dropped), restarted through journal recovery, marked stale, and
# rebuilt; every op still verifies, and the run asserts the
# retry/failover/breaker counters AND journal.replays advanced.
echo "==> go run ./cmd/nasdbench -chaos -chaos-duration 2s -json ."
go run ./cmd/nasdbench -chaos -chaos-duration 2s -json . > /dev/null
test -s BENCH_chaos.json

# Benchmark smoke: every benchmark must still run (one iteration each);
# regressions in benchmark-only code paths surface here, not in CI
# archaeology. -benchmem keeps allocs/op visible so the zero-copy data
# path's allocation discipline is checked on every run, not just when
# someone remembers to ask for it.
echo "==> go test -run '^$' -bench . -benchtime 1x -benchmem ./..."
go test -run '^$' -bench . -benchtime 1x -benchmem ./...

# End-to-end bench smoke: a small live -stats run must complete and
# emit a machine-readable result (schema in EXPERIMENTS.md). CI uploads
# the BENCH_*.json as an artifact for run-over-run comparison.
echo "==> go run ./cmd/nasdbench -stats -stats-mb 2 -json ."
go run ./cmd/nasdbench -stats -stats-mb 2 -json . > /dev/null
test -s BENCH_stats.json

# QoS smoke: the multi-tenant overload scenario must hold its
# starvation bound end to end — a ~10x open-loop aggressor flood
# through the qos plane (admission queue, token buckets, WDRR,
# deadline shedding) may not push the victim tenant's p99 past 3x its
# solo baseline, the victim must see zero failures, and every
# rejection must be the typed retry-later reply. The workload itself
# asserts all of that and exits nonzero on breach; BENCH_qos.json
# rides the same CI artifact upload as the other bench results.
echo "==> go run ./cmd/nasdbench -workload qos -qos-duration 1s -qos-clients 300 -json ."
go run ./cmd/nasdbench -workload qos -qos-duration 1s -qos-clients 300 -json . > /dev/null
test -s BENCH_qos.json
grep -q '"starvation_assert_ok": 1' BENCH_qos.json || { echo "qos smoke: starvation assertion not recorded as passing" >&2; exit 1; }

# Backend comparison smoke: the classic-vs-needle small-object run must
# complete on both engines and emit its side-by-side result (recipe and
# measured numbers in EXPERIMENTS.md).
echo "==> go run ./cmd/nasdbench -workload smallobj -smallobj-objects 2000 -json ."
go run ./cmd/nasdbench -workload smallobj -smallobj-objects 2000 -json . > /dev/null
test -s BENCH_smallobj.json

# Fleet observability smoke: two live daemons, one aggregated snapshot.
# `nasdctl fleet -json` must poll both drives' stats ops and emit the
# merged FleetSnapshot (per-drive rows + merged counters/histograms/
# events); CI uploads FLEET_smoke.json alongside the bench artifacts.
echo "==> nasdctl fleet -json against a 2-drive harness"
go build -o /tmp/nasd-check-nasdd ./cmd/nasdd
go build -o /tmp/nasd-check-nasdctl ./cmd/nasdctl
/tmp/nasd-check-nasdd -listen 127.0.0.1:17071 -id 1 -insecure -blocks 4096 &
d1=$!
/tmp/nasd-check-nasdd -listen 127.0.0.1:17072 -id 2 -insecure -blocks 4096 &
d2=$!
trap 'kill $d1 $d2 2>/dev/null || true' EXIT
fleet_ok=0
for i in 1 2 3 4 5 6 7 8 9 10; do
    if /tmp/nasd-check-nasdctl -insecure -addr 127.0.0.1:17071,127.0.0.1:17072 \
        -timeout 5s fleet -json > FLEET_smoke.json 2>/dev/null; then
        fleet_ok=1
        break
    fi
    sleep 1
done
kill $d1 $d2 2>/dev/null || true
trap - EXIT
[ "$fleet_ok" = 1 ] || { echo "fleet smoke: nasdctl fleet never succeeded" >&2; exit 1; }
test -s FLEET_smoke.json
grep -q '"merged"' FLEET_smoke.json || { echo "fleet smoke: snapshot has no merged section" >&2; exit 1; }

echo "OK"
